"""InstCombine-lite, dead-code elimination, and CFG simplification.

These AA-independent cleanups keep the IR canonical between the
AA-consuming passes, the way instcombine/simplifycfg interleave in
LLVM's O2/O3 pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    ICmpInst,
    Instruction,
    PhiInst,
    SelectInst,
)
from ..ir.values import ConstantFloat, ConstantInt, UndefValue, Value
from ..ir.types import FloatType, IntType
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


def _fold_binop(op: str, a: ConstantInt, b: ConstantInt,
                ty: IntType) -> Optional[ConstantInt]:
    from ..vm.interpreter import Machine
    try:
        v = Machine._scalar_binop(op, a.value, b.value, ty)
    except Exception:
        return None
    return ConstantInt(ty, v)


class InstCombine(Pass):
    """Local algebraic simplifications and constant folding."""

    name = "instcombine"
    display_name = "Combine redundant instructions"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        for bb in fn.blocks:
            for inst in list(bb.instructions):
                new = self._simplify(inst)
                if new is not None:
                    inst.replace_all_uses_with(new)
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name, "# insts combined")
                    changed = True
        # folds values in place, never terminators: branch folding is
        # SimplifyCFG's job, so the block graph survives
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    @staticmethod
    def _simplify(inst: Instruction) -> Optional[Value]:
        if isinstance(inst, BinaryInst):
            a, b = inst.lhs, inst.rhs
            ca = isinstance(a, ConstantInt)
            cb = isinstance(b, ConstantInt)
            if isinstance(inst.type, IntType):
                if ca and cb:
                    return _fold_binop(inst.op, a, b, inst.type)
                if cb and b.value == 0 and inst.op in ("add", "sub", "or",
                                                       "xor", "shl", "ashr",
                                                       "lshr"):
                    return a
                if ca and a.value == 0 and inst.op == "add":
                    return b
                if cb and b.value == 1 and inst.op in ("mul", "sdiv", "udiv"):
                    return a
                if ca and a.value == 1 and inst.op == "mul":
                    return b
                if cb and b.value == 0 and inst.op in ("mul", "and"):
                    return ConstantInt(inst.type, 0)
                if ca and a.value == 0 and inst.op in ("mul", "and"):
                    return ConstantInt(inst.type, 0)
            if isinstance(inst.type, FloatType):
                fa = isinstance(a, ConstantFloat)
                fb = isinstance(b, ConstantFloat)
                if fb and b.value == 0.0 and inst.op in ("fadd", "fsub"):
                    return a
                if fb and b.value == 1.0 and inst.op in ("fmul", "fdiv"):
                    return a
                if fa and a.value == 0.0 and inst.op == "fadd":
                    return b
                if fa and a.value == 1.0 and inst.op == "fmul":
                    return b
        elif isinstance(inst, ICmpInst):
            a, b = inst.operands
            # (zext i1 x) != 0  -->  x   (the frontend's condition detour)
            if inst.pred == "ne" and isinstance(b, ConstantInt) \
                    and b.value == 0 and isinstance(a, CastInst) \
                    and a.op == "zext" and a.value.type == IntType(1):
                return a.value
            if inst.pred == "eq" and isinstance(b, ConstantInt) \
                    and b.value == 1 and isinstance(a, CastInst) \
                    and a.op == "zext" and a.value.type == IntType(1):
                return a.value
            if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
                from ..vm.interpreter import Machine
                bits = a.type.bits
                from ..ir.types import I1
                return ConstantInt(I1, Machine._icmp(inst.pred, a.value,
                                                     b.value, bits))
        elif isinstance(inst, SelectInst):
            c = inst.operands[0]
            if isinstance(c, ConstantInt):
                return inst.operands[1] if c.value else inst.operands[2]
            if inst.operands[1] is inst.operands[2]:
                return inst.operands[1]
        elif isinstance(inst, PhiInst):
            distinct = {v for v in inst.operands if v is not inst
                        and not isinstance(v, UndefValue)}
            if len(distinct) == 1:
                only = distinct.pop()
                # A value from a dominating block is safe to substitute.
                if not isinstance(only, Instruction):
                    return only
        elif isinstance(inst, CastInst):
            v = inst.value
            if inst.op == "bitcast" and v.type == inst.type:
                return v
            if isinstance(v, ConstantInt):
                if inst.op in ("sext", "zext", "trunc"):
                    from ..vm.interpreter import _unsigned, _wrap_int
                    if inst.op == "zext":
                        return ConstantInt(inst.type, _unsigned(v.value, v.type.bits))
                    if inst.op == "sext":
                        return ConstantInt(inst.type, v.value)
                    return ConstantInt(inst.type, _wrap_int(v.value, inst.type.bits))
                if inst.op == "sitofp":
                    return ConstantFloat(inst.type, float(v.value))
        return None


class DeadCodeElim(Pass):
    """Remove side-effect-free instructions with no uses."""

    name = "dce"
    display_name = "Dead Code Elimination"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        again = True
        while again:
            again = False
            for bb in fn.blocks:
                for inst in reversed(list(bb.instructions)):
                    if inst.users or inst.is_terminator:
                        continue
                    if inst.has_side_effects() or inst.may_write_memory():
                        continue
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name, "# insts removed")
                    changed = again = True
            if self._erase_dead_phi_cycles(fn, ctx):
                changed = again = True
        # never erases terminators, so the block graph survives
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    @staticmethod
    def _erase_dead_phi_cycles(fn: Function, ctx: CompilationContext) -> bool:
        """Remove phis whose only (transitive) users are other phis in
        the same dead cycle — mem2reg leaves them behind for variables
        redefined every iteration of a loop."""
        phis = [i for bb in fn.blocks for i in bb.phis()]
        if not phis:
            return False
        phi_set = set(phis)
        live: set = set()
        work = [p for p in phis
                if any(u not in phi_set for u in p.users)]
        live.update(work)
        while work:
            p = work.pop()
            for op in p.operands:
                if op in phi_set and op not in live:
                    live.add(op)
                    work.append(op)
        dead = [p for p in phis if p not in live]
        for p in dead:
            p.replace_all_uses_with(UndefValue(p.type))
        for p in dead:
            p.erase_from_parent()
            ctx.stats.add("Dead Code Elimination", "# insts removed")
        return bool(dead)


class SimplifyCFG(Pass):
    """Fold constant branches, remove unreachable blocks, merge chains."""

    name = "simplifycfg"
    display_name = "Simplify the CFG"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        changed |= self._fold_constant_branches(fn, ctx)
        changed |= self._remove_unreachable(fn, ctx)
        changed |= self._merge_chains(fn, ctx)
        return PreservedAnalyses.from_changed(changed)

    def _fold_constant_branches(self, fn: Function,
                                ctx: CompilationContext) -> bool:
        changed = False
        for bb in fn.blocks:
            term = bb.terminator
            if isinstance(term, BranchInst) and term.is_conditional \
                    and isinstance(term.condition, ConstantInt):
                taken = term.targets[0] if term.condition.value else term.targets[1]
                dead = term.targets[1] if term.condition.value else term.targets[0]
                if dead is not taken:
                    for phi in dead.phis():
                        phi.remove_incoming(bb)
                term.erase_from_parent()
                nb = BranchInst([taken])
                bb.append(nb)
                ctx.stats.add(self.display_name, "# branches folded")
                changed = True
        return changed

    def _remove_unreachable(self, fn: Function, ctx: CompilationContext) -> bool:
        from ..analysis.cfg import reachable_blocks
        reach = reachable_blocks(fn)
        dead = [bb for bb in fn.blocks if bb not in reach]
        if not dead:
            return False
        for bb in dead:
            for succ in bb.successors:
                if succ in reach:
                    for phi in succ.phis():
                        phi.remove_incoming(bb)
        for bb in dead:
            for inst in list(bb.instructions):
                # break def-use links into surviving code
                if inst.users:
                    inst.replace_all_uses_with(UndefValue(inst.type))
                inst.erase_from_parent()
            bb.erase_from_parent()
        ctx.stats.add(self.display_name, "# unreachable blocks removed",
                      len(dead))
        return True

    def _merge_chains(self, fn: Function, ctx: CompilationContext) -> bool:
        """Merge B into A when A's only successor is B and B's only
        predecessor is A."""
        changed = False
        again = True
        while again:
            again = False
            preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
            for bb in fn.blocks:
                for s in bb.successors:
                    preds[s].append(bb)
            for a in fn.blocks:
                succs = a.successors
                if len(succs) != 1:
                    continue
                bsucc = succs[0]
                if bsucc is a or bsucc is fn.entry or len(preds[bsucc]) != 1:
                    continue
                if bsucc.phis():
                    for phi in list(bsucc.phis()):
                        inc = phi.incoming_for_block(a)
                        if inc is None:
                            break
                        phi.replace_all_uses_with(inc)
                        phi.erase_from_parent()
                    if bsucc.phis():
                        continue
                a.terminator.erase_from_parent()
                for inst in list(bsucc.instructions):
                    bsucc.instructions.remove(inst)
                    inst.parent = a
                    a.instructions.append(inst)
                # successors of bsucc now flow from a: fix their phis
                for s in a.successors:
                    for phi in s.phis():
                        for i, blk in enumerate(phi.incoming_blocks):
                            if blk is bsucc:
                                phi.incoming_blocks[i] = a
                fn.blocks.remove(bsucc)
                bsucc.parent = None
                ctx.stats.add(self.display_name, "# blocks merged")
                changed = again = True
                break
        return changed
