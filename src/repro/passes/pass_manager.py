"""Pass manager and compilation context.

Mirrors the relevant behaviour of LLVM's *new* pass manager (paper
§III): passes run in a fixed sequence, consume analyses (AA,
dominators, loops, MemorySSA) computed lazily through an
:class:`~repro.passes.analysis_manager.AnalysisManager`, and report a
:class:`~repro.passes.analysis_manager.PreservedAnalyses` describing
exactly which analyses survive each transformation.  The manager can
announce executions (``-debug-pass=Executions``), which is how ORAQL's
dumps attribute queries to the issuing pass (Fig. 3).

Invalidation is fine-grained: a CFG-preserving pass keeps its
function's DominatorTree/LoopInfo alive, and a function-local change no
longer nukes module-level AA state (per-function CFL summaries drop
only the changed function's entry; GlobalsAA keeps its address-taken
verdicts, as LLVM's module analyses survive function passes).  The
legacy invalidate-everything behavior remains available as
``invalidation="coarse"`` for the differential benchmarks.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Set, Union

from ..analysis import (
    AAResults,
    ALL_AA_PASSES,
    DEFAULT_AA_CHAIN,
    DominatorTree,
    LoopInfo,
    MemorySSA,
)
from ..ir.function import Function
from ..ir.module import Module
from ..ir.verifier import verify_function
from .analysis_manager import (
    AnalysisManager,
    DominatorTreeAnalysis,
    LoopAnalysis,
    MemorySSAAnalysis,
    PreservedAnalyses,
)
from .statistics import Statistics


class FunctionAnalyses:
    """Per-function analysis view, backed by the context's
    :class:`AnalysisManager` (caching, invalidation, and the rebuild
    counters all live there)."""

    def __init__(self, ctx: "CompilationContext", fn: Function):
        self.ctx = ctx
        self.fn = fn

    @property
    def dt(self) -> DominatorTree:
        return self.ctx.am.get(DominatorTreeAnalysis, self.fn)

    @property
    def li(self) -> LoopInfo:
        return self.ctx.am.get(LoopAnalysis, self.fn)

    @property
    def mssa(self) -> MemorySSA:
        """MemorySSA with eager use optimization; queries issued during
        construction are attributed to the 'Memory SSA' pass."""
        return self.ctx.am.get(MemorySSAAnalysis, self.fn)


class CompilationContext:
    """Everything shared across one compilation: the AA chain (with the
    optional ORAQL pass appended), statistics, the debug log, and the
    analysis manager."""

    def __init__(self, module: Module,
                 aa_chain: Sequence[str] = DEFAULT_AA_CHAIN,
                 oraql=None, override=None,
                 debug_pass_executions: bool = False,
                 verify_each: bool = False,
                 verify_analyses: bool = False,
                 invalidation: str = "fine",
                 trace=None):
        if invalidation not in ("fine", "coarse"):
            raise ValueError(f"unknown invalidation mode {invalidation!r}")
        self.module = module
        self.oraql = oraql
        self.override = override
        analyses = []
        for name in aa_chain:
            cls = ALL_AA_PASSES[name]
            analyses.append(cls(module) if cls.requires_module else cls())
        self.aa = AAResults(analyses, oraql=oraql, override=override)
        if oraql is not None:
            oraql.attach(self)
        self.stats = Statistics()
        self.debug_log: List[str] = []
        self.debug_pass_executions = debug_pass_executions
        self.verify_each = verify_each
        self.verify_analyses = verify_analyses
        self.invalidation = invalidation
        self.am = AnalysisManager(self)
        #: number of pass executions (per-function runs + module-pass
        #: runs) this context performed — the incremental compiler's
        #: headline savings metric
        self.pass_executions = 0
        #: pipeline ordinal of the pass currently executing (maintained
        #: by :meth:`PassManager.run`); stamps ORAQL query records so a
        #: later incremental compile knows where a function's stream
        #: diverges, hence where its pipeline can resume
        self.pass_index = 0
        #: optional :class:`~repro.oraql.incremental.SnapshotCollector`
        #: capturing pre-pass body snapshots for future resumes
        self.resume_collector = None
        self._fn_views: Dict[int, FunctionAnalyses] = {}
        #: pass-context stack for query provenance: the top entry is the
        #: pass currently executing; an analysis built on demand inside a
        #: pass (Memory SSA during GVN) pushes itself so queries keep
        #: both attributions.  Mirrors ``aa.current_pass`` (the top).
        self.pass_stack: List[str] = []
        self.trace = trace
        if trace is not None:
            trace.bind_context(self)
            self.aa.trace = trace

    # -- analyses ----------------------------------------------------------
    def analyses(self, fn: Function) -> FunctionAnalyses:
        view = self._fn_views.get(fn.id)
        if view is None:
            view = FunctionAnalyses(self, fn)
            self._fn_views[fn.id] = view
        return view

    def invalidate(self, fn: Optional[Function] = None,
                   pa: Optional[PreservedAnalyses] = None) -> None:
        """Invalidate analyses after a change: everything ``pa`` does
        not preserve, at function scope when ``fn`` is given, module
        scope otherwise.  ``pa=None`` preserves nothing (the legacy
        meaning of ``invalidate``, used by passes that mutate the CFG
        mid-run and must refetch loop structure)."""
        if fn is None:
            self.am.invalidate_module(pa)
        else:
            self.am.invalidate_function(fn, pa)

    def merge(self, other: "CompilationContext") -> None:
        """Fold another context's bookkeeping into this one.  Used when
        several compilation contexts report through a single program
        context (the non-LTO per-TU compiles), replacing the inline
        counter folding previously copied at each call site."""
        if other is self:
            return
        self.stats.merge(other.stats)
        self.aa.merge(other.aa)
        self.am.merge_counters(other.am)
        self.debug_log.extend(other.debug_log)
        self.pass_executions += other.pass_executions

    # -- pass-context stack ------------------------------------------------
    def push_pass(self, name: str) -> None:
        self.pass_stack.append(name)
        self.aa.current_pass = name

    def pop_pass(self) -> None:
        if self.pass_stack:
            self.pass_stack.pop()
        self.aa.current_pass = (self.pass_stack[-1] if self.pass_stack
                                else "<none>")

    def timed(self, name: str):
        """A phase-timer scope when tracing, a no-op otherwise."""
        if self.trace is not None:
            return self.trace.phase(name)
        return nullcontext()

    # -- logging --------------------------------------------------------------
    def announce(self, pass_name: str, fn: Optional[Function] = None) -> None:
        if self.debug_pass_executions or (
                self.oraql is not None and self.oraql.wants_dump()):
            where = f" on Function '{fn.name}'" if fn is not None else ""
            self.debug_log.append(f"Executing Pass '{pass_name}'{where}...")

    def log(self, text: str) -> None:
        self.debug_log.append(text)


class Pass:
    """Base class: function-at-a-time transformation.

    ``run_on_function`` returns a :class:`PreservedAnalyses`:
    ``PreservedAnalyses.all()`` when nothing changed, ``cfg()`` when
    instructions changed but the block graph did not, ``none()`` when
    the CFG itself may have changed.
    """

    name = "pass"
    display_name = "Pass"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        raise NotImplementedError

    def should_run_on(self, fn: Function) -> bool:
        return not fn.is_declaration and fn.blocks


class ModulePass(Pass):
    """Base class: whole-module transformation.  ``run_on_module``
    returns a :class:`PreservedAnalyses` whose ``modified_functions``
    (when known) scopes both invalidation and ``verify_each``."""

    def run_on_module(self, module: Module,
                      ctx: CompilationContext) -> PreservedAnalyses:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline, maintaining attribution and invalidation."""

    def __init__(self, ctx: CompilationContext):
        self.ctx = ctx

    def run(self, pipeline: Sequence[Pass],
            only: Optional[Union[Set[str], Dict[str, int]]] = None) -> None:
        """Run ``pipeline`` over the context's module.

        ``only`` restricts function passes to the named functions — the
        incremental compiler's entry point: every other function keeps
        its (spliced) baseline body untouched.  A dict maps each name
        to the pipeline ordinal its run *resumes* at (passes below it
        are skipped — the body was restored from a baseline snapshot
        taken at exactly that point); a set means "from the top" for
        every member.  Module passes see the whole module by
        definition, so a restricted run refuses them; the incremental
        compiler falls back to a full compile instead.
        """
        ctx = self.ctx
        module = ctx.module
        starts: Optional[Dict[str, int]] = None
        if only is not None:
            starts = (dict(only) if isinstance(only, dict)
                      else {name: 0 for name in only})
        collector = ctx.resume_collector
        for p_idx, p in enumerate(pipeline):
            ctx.pass_index = p_idx
            ctx.aa.current_ordinal = p_idx
            if isinstance(p, ModulePass):
                if starts is not None:
                    raise ValueError(
                        f"module pass {p.display_name!r} cannot run in a "
                        f"function-restricted (incremental) pipeline")
                ctx.announce(p.display_name)
                ctx.push_pass(p.display_name)
                ctx.aa.current_function = None
                ctx.pass_executions += 1
                try:
                    with ctx.timed(p.display_name):
                        pa = p.run_on_module(module, ctx)
                finally:
                    ctx.pop_pass()
                if not pa.are_all_preserved():
                    ctx.am.invalidate_module(pa)
                    touched = (pa.modified_functions
                               if pa.modified_functions is not None
                               else module.defined_functions())
                    for fn in touched:
                        if ctx.verify_each:
                            verify_function(
                                fn, dt=ctx.am.cached(DominatorTreeAnalysis,
                                                     fn))
                        if ctx.verify_analyses:
                            ctx.am.verify_preserved(fn, p.display_name)
                continue
            for fn in list(module.defined_functions()):
                if starts is not None:
                    start = starts.get(fn.name)
                    if start is None or p_idx < start:
                        continue
                if not p.should_run_on(fn):
                    continue
                if collector is not None:
                    collector.before(fn, p_idx)
                ctx.announce(p.display_name, fn)
                ctx.push_pass(p.display_name)
                ctx.aa.current_function = fn
                ctx.pass_executions += 1
                try:
                    with ctx.timed(p.display_name):
                        pa = p.run_on_function(fn, ctx)
                finally:
                    ctx.pop_pass()
                if collector is not None:
                    collector.after(fn, p_idx)
                if not pa.are_all_preserved():
                    ctx.am.invalidate_function(fn, pa)
                    if ctx.verify_each:
                        verify_function(
                            fn, dt=ctx.am.cached(DominatorTreeAnalysis, fn))
                    if ctx.verify_analyses:
                        ctx.am.verify_preserved(fn, p.display_name)
        ctx.aa.current_pass = "<none>"
        ctx.aa.current_function = None
