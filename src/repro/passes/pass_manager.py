"""Pass manager and compilation context.

Mirrors the relevant behaviour of LLVM's pass manager (paper §III):
passes run in a fixed sequence, may consume analyses (AA, dominators,
loops, MemorySSA) computed lazily and invalidated by transformations,
and the manager can announce executions (``-debug-pass=Executions``),
which is how ORAQL's dumps attribute queries to the issuing pass
(Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import (
    AAResults,
    ALL_AA_PASSES,
    DEFAULT_AA_CHAIN,
    DominatorTree,
    LoopInfo,
    MemorySSA,
)
from ..ir.function import Function
from ..ir.module import Module
from ..ir.verifier import verify_function
from .statistics import Statistics


class FunctionAnalyses:
    """Lazily-built per-function analyses, rebuilt after invalidation."""

    def __init__(self, ctx: "CompilationContext", fn: Function):
        self.ctx = ctx
        self.fn = fn
        self._dt: Optional[DominatorTree] = None
        self._li: Optional[LoopInfo] = None
        self._mssa: Optional[MemorySSA] = None

    @property
    def dt(self) -> DominatorTree:
        if self._dt is None:
            self._dt = DominatorTree(self.fn)
        return self._dt

    @property
    def li(self) -> LoopInfo:
        if self._li is None:
            self._li = LoopInfo(self.fn, self.dt)
        return self._li

    @property
    def mssa(self) -> MemorySSA:
        """MemorySSA with eager use optimization; queries issued during
        construction are attributed to the 'Memory SSA' pass."""
        if self._mssa is None:
            ctx = self.ctx
            saved = ctx.aa.current_pass
            ctx.announce("Memory SSA", self.fn)
            ctx.aa.current_pass = "Memory SSA"
            try:
                self._mssa = MemorySSA(self.fn, ctx.aa, optimize_uses=True)
            finally:
                ctx.aa.current_pass = saved
        return self._mssa


class CompilationContext:
    """Everything shared across one compilation: the AA chain (with the
    optional ORAQL pass appended), statistics, the debug log, and cached
    per-function analyses."""

    def __init__(self, module: Module,
                 aa_chain: Sequence[str] = DEFAULT_AA_CHAIN,
                 oraql=None, override=None,
                 debug_pass_executions: bool = False,
                 verify_each: bool = False):
        self.module = module
        self.oraql = oraql
        self.override = override
        analyses = []
        for name in aa_chain:
            cls = ALL_AA_PASSES[name]
            try:
                analyses.append(cls(module))  # GlobalsAA takes the module
            except TypeError:
                analyses.append(cls())
        self.aa = AAResults(analyses, oraql=oraql, override=override)
        if oraql is not None:
            oraql.attach(self)
        self.stats = Statistics()
        self.debug_log: List[str] = []
        self.debug_pass_executions = debug_pass_executions
        self.verify_each = verify_each
        self._fn_analyses: Dict[int, FunctionAnalyses] = {}

    # -- analyses ----------------------------------------------------------
    def analyses(self, fn: Function) -> FunctionAnalyses:
        fa = self._fn_analyses.get(fn.id)
        if fa is None:
            fa = FunctionAnalyses(self, fn)
            self._fn_analyses[fn.id] = fa
        return fa

    def invalidate(self, fn: Optional[Function] = None) -> None:
        if fn is None:
            self._fn_analyses.clear()
        else:
            self._fn_analyses.pop(fn.id, None)
        for analysis in self.aa.analyses:
            inv = getattr(analysis, "invalidate", None)
            if inv is not None:
                inv()

    # -- logging --------------------------------------------------------------
    def announce(self, pass_name: str, fn: Optional[Function] = None) -> None:
        if self.debug_pass_executions or (
                self.oraql is not None and self.oraql.wants_dump()):
            where = f" on Function '{fn.name}'" if fn is not None else ""
            self.debug_log.append(f"Executing Pass '{pass_name}'{where}...")

    def log(self, text: str) -> None:
        self.debug_log.append(text)


class Pass:
    """Base class: function-at-a-time transformation."""

    name = "pass"
    display_name = "Pass"

    def run_on_function(self, fn: Function, ctx: CompilationContext) -> bool:
        raise NotImplementedError

    def should_run_on(self, fn: Function) -> bool:
        return not fn.is_declaration and fn.blocks


class ModulePass(Pass):
    """Base class: whole-module transformation."""

    def run_on_module(self, module: Module, ctx: CompilationContext) -> bool:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline, maintaining attribution and invalidation."""

    def __init__(self, ctx: CompilationContext):
        self.ctx = ctx

    def run(self, pipeline: Sequence[Pass]) -> None:
        ctx = self.ctx
        module = ctx.module
        for p in pipeline:
            if isinstance(p, ModulePass):
                ctx.announce(p.display_name)
                ctx.aa.current_pass = p.display_name
                ctx.aa.current_function = None
                changed = p.run_on_module(module, ctx)
                if changed:
                    ctx.invalidate()
                    if ctx.verify_each:
                        for fn in module.defined_functions():
                            verify_function(fn)
                continue
            for fn in list(module.defined_functions()):
                if not p.should_run_on(fn):
                    continue
                ctx.announce(p.display_name, fn)
                ctx.aa.current_pass = p.display_name
                ctx.aa.current_function = fn
                changed = p.run_on_function(fn, ctx)
                if changed:
                    ctx.invalidate(fn)
                    if ctx.verify_each:
                        verify_function(fn)
        ctx.aa.current_pass = "<none>"
        ctx.aa.current_function = None
