"""MemCpyOpt: memcpy forwarding and elision.

* ``memcpy(b, a); ...; memcpy(c, b)``  →  ``memcpy(c, a)`` when nothing
  in between may write ``a`` or ``b`` (alias queries);
* self-copies are deleted;
* a memcpy fully overwritten by a later memcpy/memset to the same
  destination with no intervening reads is deleted (DSE for memcpy).

In the paper's Quicksilver breakdown, 5.5% of optimistic queries come
from this pass.
"""

from __future__ import annotations

from ..analysis.aliasing import AliasResult, ModRefInfo
from ..analysis.memloc import MemoryLocation
from ..ir.function import Function
from ..ir.instructions import MemCpyInst, MemSetInst
from ..ir.values import ConstantInt
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


class MemCpyOpt(Pass):
    name = "memcpyopt"
    display_name = "MemCpy Optimization"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        aa = ctx.aa
        changed = False
        for bb in fn.blocks:
            insts = bb.instructions
            idx = 0
            while idx < len(insts):
                inst = insts[idx]
                if not isinstance(inst, MemCpyInst):
                    idx += 1
                    continue
                # self copy
                if aa.alias(MemoryLocation.for_dst(inst),
                            MemoryLocation.for_src(inst)) is AliasResult.MUST:
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name, "# memcpys deleted")
                    changed = True
                    continue
                if self._forward_chain(bb, idx, inst, ctx):
                    changed = True
                idx += 1
        # rewrites/erases memcpys in place; the CFG is untouched
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    def _forward_chain(self, bb, idx: int, second: MemCpyInst,
                       ctx: CompilationContext) -> bool:
        """Rewrite ``second``'s source to the source of an earlier memcpy
        that produced it."""
        aa = ctx.aa
        src_loc = MemoryLocation.for_src(second)
        insts = bb.instructions
        for j in range(idx - 1, -1, -1):
            prev = insts[j]
            if isinstance(prev, MemCpyInst):
                dst_loc = MemoryLocation.for_dst(prev)
                if aa.alias(dst_loc, src_loc) is AliasResult.MUST \
                        and isinstance(prev.size, ConstantInt) \
                        and isinstance(second.size, ConstantInt) \
                        and prev.size.value >= second.size.value \
                        and prev.src.type == second.src.type:
                    # nothing between may write prev.src either
                    prev_src = MemoryLocation.for_src(prev)
                    for k in range(j + 1, idx):
                        if insts[k].may_write_memory() and (
                                aa.get_mod_ref(insts[k], prev_src)
                                & ModRefInfo.MOD):
                            return False
                    second.set_operand(1, prev.src)
                    ctx.stats.add(self.display_name, "# memcpys forwarded")
                    return True
            if prev.may_write_memory():
                if aa.get_mod_ref(prev, src_loc) & ModRefInfo.MOD:
                    return False
        return False
