"""EarlyCSE: dominator-scoped common-subexpression and load elimination.

The load-availability logic is a heavy AA consumer: every store must be
checked against every available load (may it clobber it?), and those are
precisely the queries an optimistic answer turns into extra eliminated
instructions (Fig. 6: XSBench-CUDA "# instructions eliminated" +3.8%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import AliasResult
from ..analysis.memloc import MemoryLocation
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    GEPInst,
    ICmpInst,
    FCmpInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Value
from ..ir.instructions import COMMUTATIVE_BINOPS
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


def _op_key(v: Value):
    """Operand key: constants by value (distinct ConstantInt instances
    with the same value must CSE), everything else by identity."""
    from ..ir.values import ConstantFloat, ConstantInt, ConstantNull
    if isinstance(v, ConstantInt):
        return ("ci", v.type.bits, v.value)
    if isinstance(v, ConstantFloat):
        return ("cf", v.type.bits, v.value)
    if isinstance(v, ConstantNull):
        return ("null",)
    return v.id


def _expr_key(inst: Instruction) -> Optional[Tuple]:
    """Hash key for pure, speculatable expressions."""
    if isinstance(inst, BinaryInst):
        ops = [_op_key(o) for o in inst.operands]
        if inst.op in COMMUTATIVE_BINOPS:
            ops.sort(key=repr)
        return ("bin", inst.op, str(inst.type), *ops)
    if isinstance(inst, (ICmpInst, FCmpInst)):
        return (inst.opcode, inst.pred, *(_op_key(o) for o in inst.operands))
    if isinstance(inst, GEPInst):
        return ("gep", str(inst.type), *(_op_key(o) for o in inst.operands))
    if isinstance(inst, CastInst):
        return ("cast", inst.op, str(inst.type), _op_key(inst.value))
    if isinstance(inst, SelectInst):
        return ("select", *(_op_key(o) for o in inst.operands))
    if isinstance(inst, CallInst) and inst.is_pure():
        return ("call", inst.callee_name, *(_op_key(o) for o in inst.operands))
    return None


class EarlyCSE(Pass):
    name = "early-cse"
    display_name = "Early CSE"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        self.ctx = ctx
        dt = ctx.analyses(fn).dt
        children: Dict[Optional[BasicBlock], List[BasicBlock]] = {}
        for bb in fn.blocks:
            if dt.is_reachable(bb):
                children.setdefault(dt.idom.get(bb), []).append(bb)

        from ..analysis.cfg import predecessor_map
        preds = predecessor_map(fn)

        changed = [False]
        # iterative dom-tree DFS; each child gets copies of parent scopes
        stack: List[Tuple[BasicBlock, Dict, List]] = [(fn.entry, {}, [])]
        while stack:
            bb, exprs, loads = stack.pop()
            exprs = dict(exprs)
            loads = list(loads)
            if len(preds.get(bb, ())) > 1:
                # join point (incl. loop headers): memory may have been
                # written on another incoming path — bump the memory
                # generation, i.e. drop all available loads (pure
                # expressions stay valid by SSA dominance)
                loads = []
            self._process_block(bb, exprs, loads, changed)
            for child in children.get(bb, []):
                stack.append((child, exprs, loads))
        # only erases/replaces non-terminator instructions: the block
        # graph — and with it DT/LI — survives
        return PreservedAnalyses.from_changed(changed[0], preserves_cfg=True)

    def _process_block(self, bb: BasicBlock, exprs: Dict,
                       loads: List[Tuple[Value, MemoryLocation, Value]],
                       changed: List[bool]) -> None:
        ctx = self.ctx
        aa = ctx.aa
        for inst in list(bb.instructions):
            key = _expr_key(inst)
            if key is not None:
                prev = exprs.get(key)
                if prev is not None:
                    inst.replace_all_uses_with(prev)
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name,
                                  "# instructions eliminated")
                    changed[0] = True
                else:
                    exprs[key] = inst
                continue
            if isinstance(inst, LoadInst) and not inst.is_volatile:
                loc = MemoryLocation.get(inst)
                hit = None
                for ptr, ploc, val in loads:
                    if val.type != inst.type:
                        continue
                    if ptr is inst.pointer or aa.alias(ploc, loc) is AliasResult.MUST:
                        hit = val
                        break
                if hit is not None:
                    inst.replace_all_uses_with(hit)
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name,
                                  "# instructions eliminated")
                    ctx.stats.add(self.display_name, "# loads CSE'd")
                    changed[0] = True
                else:
                    loads.append((inst.pointer, loc, inst))
                continue
            if isinstance(inst, StoreInst):
                loc = MemoryLocation.get(inst)
                # drop available loads the store may clobber
                keep = []
                for entry in loads:
                    if aa.alias(entry[1], loc) is AliasResult.NO:
                        keep.append(entry)
                loads[:] = keep
                # the stored value is now the content of the location
                loads.append((inst.pointer, loc, inst.value))
                continue
            if isinstance(inst, (MemCpyInst, MemSetInst)):
                loc = MemoryLocation.for_dst(inst)
                loads[:] = [e for e in loads
                            if aa.alias(e[1], loc) is AliasResult.NO]
                continue
            if isinstance(inst, CallInst) and inst.may_write_memory():
                loads.clear()
