"""Loop load elimination: store-to-load forwarding inside loop bodies.

Forwards a value stored earlier in the same block to a later load of a
must-aliasing address, provided no instruction in between may write the
location (alias queries per intervening writer).  In the paper's
Quicksilver breakdown this pass issues 6.7% of all optimistic queries.
"""

from __future__ import annotations

from ..analysis.aliasing import AliasResult, ModRefInfo
from ..analysis.memloc import MemoryLocation
from ..ir.function import Function
from ..ir.instructions import CallInst, LoadInst, StoreInst
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


class LoopLoadElim(Pass):
    name = "loop-load-elim"
    display_name = "Loop Load Elimination"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        li = ctx.analyses(fn).li
        aa = ctx.aa
        changed = False
        loop_blocks = {bb for loop in li.loops for bb in loop.blocks}
        for bb in fn.blocks:
            if bb not in loop_blocks:
                continue
            insts = bb.instructions
            for idx in range(len(insts) - 1, -1, -1):
                inst = insts[idx]
                if not isinstance(inst, LoadInst) or inst.is_volatile:
                    continue
                loc = MemoryLocation.get(inst)
                # scan backwards for the forwarding store
                for j in range(idx - 1, -1, -1):
                    prev = insts[j]
                    if isinstance(prev, StoreInst):
                        if prev.value.type == inst.type and aa.alias(
                                MemoryLocation.get(prev), loc
                        ) is AliasResult.MUST:
                            inst.replace_all_uses_with(prev.value)
                            inst.erase_from_parent()
                            ctx.stats.add(self.display_name,
                                          "# loads forwarded")
                            changed = True
                            break
                        if aa.get_mod_ref(prev, loc) & ModRefInfo.MOD:
                            break
                    elif prev.may_write_memory():
                        if aa.get_mod_ref(prev, loc) & ModRefInfo.MOD:
                            break
        # forwards/erases loads within blocks; the CFG is untouched
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)
