"""Machine sinking: move instructions into the successor that uses them.

Sinking a load past the branch needs proof that nothing on the fall-
through path writes the location (alias queries — the GridMini device
compile attributes four of its 86 queries to this pass, §V-C).
"""

from __future__ import annotations

from ..analysis.aliasing import AliasResult, ModRefInfo
from ..analysis.memloc import MemoryLocation
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


class MachineSink(Pass):
    name = "machine-sink"
    display_name = "Machine code sinking"

    SINKABLE = (BinaryInst, CastInst, GEPInst, ICmpInst, FCmpInst, SelectInst)

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        dt = ctx.analyses(fn).dt
        aa = ctx.aa
        changed = False
        for bb in list(fn.blocks):
            for inst in reversed(list(bb.instructions)):
                if isinstance(inst, PhiInst) or inst.is_terminator:
                    continue
                users = list(inst.users)
                if not users:
                    continue
                target = self._common_user_block(users)
                if target is None or target is bb:
                    continue
                if not dt.is_reachable(target) or not dt.dominates_block(
                        bb, target):
                    continue
                # never sink into a loop header from outside (re-execution)
                li = ctx.analyses(fn).li
                lt, lb = li.loop_for(target), li.loop_for(bb)
                if lt is not None and lt is not lb:
                    continue
                if any(isinstance(u, PhiInst) for u in users):
                    continue
                if isinstance(inst, LoadInst):
                    if inst.is_volatile:
                        continue
                    preds = target.predecessors
                    if target not in bb.successors or preds != [bb]:
                        continue  # loads only sink across a single edge
                    loc = MemoryLocation.get(inst)
                    tail = bb.instructions[bb.instructions.index(inst) + 1:]
                    head = target.instructions[:self._index_of_first_user(
                        target, users)]
                    blocked = False
                    for mid in tail + head:
                        if mid.may_write_memory() and (
                                aa.get_mod_ref(mid, loc) & ModRefInfo.MOD):
                            blocked = True
                            break
                    if blocked:
                        continue
                elif not isinstance(inst, self.SINKABLE):
                    continue
                bb.instructions.remove(inst)
                inst.parent = None
                target.insert_at_front(inst)
                ctx.stats.add(self.display_name, "# instructions sunk")
                changed = True
        # moves instructions between existing blocks; the CFG is untouched
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    @staticmethod
    def _common_user_block(users) -> BasicBlock:
        blocks = {getattr(u, "parent", None) for u in users}
        blocks.discard(None)
        if len(blocks) == 1:
            return blocks.pop()
        return None

    @staticmethod
    def _index_of_first_user(block: BasicBlock, users) -> int:
        for i, inst in enumerate(block.instructions):
            if inst in users:
                return i
        return len(block.instructions)
