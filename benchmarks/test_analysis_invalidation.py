"""Analysis-invalidation benchmark: fine-grained ``PreservedAnalyses``
invalidation vs the legacy invalidate-everything behavior.

Two sweeps, both asserting observable-behavior neutrality first:

* a compile sweep over every bundled configuration — identical
  executable hashes and AA query streams, with the DominatorTree /
  LoopInfo construction counts and wall-clock recorded per row;
* a probing sweep on representative configurations — identical probing
  verdicts (unique optimistic/pessimistic query counts, no-alias
  totals), with the per-report analysis rebuild counters compared.

The headline number (recorded in ``results/analysis_invalidation.txt``)
is the reduction in DT+LI constructions, which must be >= 30%.
MemorySSA construction issues alias queries, so its build count must be
*identical* across modes — any drift there would change the ORAQL query
stream.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.oraql import ProbingDriver
from repro.oraql.compiler import Compiler
from repro.workloads.base import get_config, row_names

from conftest import save_result

#: probing is ~10-30x a single compile, so the probing-level
#: differential runs on a representative pair: one small offload config
#: and one query-heavy sequential config
PROBE_ROWS = ("GridMini-offload", "XSBench-seq")


def _compile_row(row: str) -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for mode in ("fine", "coarse"):
        t0 = time.time()
        prog = Compiler(invalidation=mode).compile(get_config(row))
        wall = time.time() - t0
        out[mode] = {
            "hash": prog.exe_hash,
            "queries": prog.ctx.aa.total_queries,
            "no_alias": prog.no_alias_count,
            "builds": prog.analysis_counters["builds"],
            "preserved": prog.analysis_counters["preserved_hits"],
            "wall": wall,
        }
    return out


def _dtli(builds: Dict[str, int]) -> int:
    return builds.get("DominatorTree", 0) + builds.get("LoopInfo", 0)


def test_invalidation_compile_sweep(benchmark, once):
    def sweep():
        return {row: _compile_row(row) for row in row_names()}

    results = once(benchmark, sweep)

    lines: List[str] = []
    lines.append("Analysis invalidation: fine-grained (PreservedAnalyses) "
                 "vs coarse (legacy invalidate-everything)")
    lines.append("")
    lines.append(f"{'configuration':<24} {'DT+LI fine':>10} "
                 f"{'DT+LI coarse':>12} {'saved':>7} {'MSSA':>5} "
                 f"{'wall fine':>9} {'wall coarse':>11}")
    tot = {"fine": 0, "coarse": 0, "wall_fine": 0.0, "wall_coarse": 0.0}
    for row, r in results.items():
        # neutrality: the executable and the query stream are unchanged
        assert r["fine"]["hash"] == r["coarse"]["hash"], row
        assert r["fine"]["queries"] == r["coarse"]["queries"], row
        assert r["fine"]["no_alias"] == r["coarse"]["no_alias"], row
        assert r["fine"]["builds"].get("MemorySSA") == \
            r["coarse"]["builds"].get("MemorySSA"), row
        f, c = _dtli(r["fine"]["builds"]), _dtli(r["coarse"]["builds"])
        tot["fine"] += f
        tot["coarse"] += c
        tot["wall_fine"] += r["fine"]["wall"]
        tot["wall_coarse"] += r["coarse"]["wall"]
        saved = 100.0 * (1 - f / c) if c else 0.0
        lines.append(f"{row:<24} {f:>10} {c:>12} {saved:>6.1f}% "
                     f"{r['fine']['builds'].get('MemorySSA', 0):>5} "
                     f"{r['fine']['wall']:>8.2f}s {r['coarse']['wall']:>10.2f}s")
    saved_total = 100.0 * (1 - tot["fine"] / tot["coarse"])
    lines.append("")
    lines.append(f"total DT+LI constructions: {tot['fine']} fine vs "
                 f"{tot['coarse']} coarse ({saved_total:.1f}% saved)")
    lines.append(f"total compile wall-clock : {tot['wall_fine']:.2f}s fine "
                 f"vs {tot['wall_coarse']:.2f}s coarse")
    table = "\n".join(lines)
    save_result("analysis_invalidation", table)
    print("\n" + table)

    # acceptance floor: >= 30% fewer DT/LI constructions
    assert saved_total >= 30.0, table


def test_invalidation_probing_differential():
    lines: List[str] = []
    lines.append("")
    lines.append("probing-level differential (full ORAQL probing loop, "
                 "fine vs coarse):")
    for row in PROBE_ROWS:
        reports = {}
        for mode in ("fine", "coarse"):
            t0 = time.time()
            rep = ProbingDriver(get_config(row),
                                compiler=Compiler(invalidation=mode)).run()
            rep.wall_seconds = time.time() - t0
            reports[mode] = rep
        f, c = reports["fine"], reports["coarse"]
        # verdict-stream neutrality across the whole probing loop
        assert (f.opt_unique, f.pess_unique, f.no_alias_oraql,
                f.no_alias_original, f.compiles) == \
               (c.opt_unique, c.pess_unique, c.no_alias_oraql,
                c.no_alias_original, c.compiles), row
        assert f.analysis_builds.get("MemorySSA") == \
            c.analysis_builds.get("MemorySSA"), row
        fd, cd = _dtli(f.analysis_builds), _dtli(c.analysis_builds)
        assert fd <= cd * 0.7, (row, fd, cd)
        lines.append(f"  {row:<22} {f.compiles} compiles, DT+LI {fd} fine "
                     f"vs {cd} coarse ({100.0 * (1 - fd / cd):.1f}% saved), "
                     f"{f.wall_seconds:.1f}s vs {c.wall_seconds:.1f}s")
    text = "\n".join(lines)
    print(text)
    # append to the compile-sweep artifact when it exists
    import os
    from conftest import RESULTS_DIR
    path = os.path.join(RESULTS_DIR, "analysis_invalidation.txt")
    if os.path.exists(path):
        with open(path, "a") as fh:
            fh.write(text + "\n")
