"""Fig. 2 — the probing strategies on synthetic dangerous-query sets.

Quantifies the figure's two claims: sibling outcomes can be deduced
instead of tested, and chunked probing beats frequency-space probing
when the dangerous queries cluster.
"""

from repro.experiments.fig2_probing import render_fig2, run_fig2

from conftest import save_result


def test_fig2_strategies(benchmark, once):
    rows = once(benchmark, run_fig2, 256)
    table = render_fig2(rows)
    save_result("fig2_probing", table)
    print("\n" + table)

    by_layout = {r.layout: r for r in rows}
    clustered = by_layout["clustered (8 adjacent)"]
    scattered = by_layout["scattered (8 uniform)"]
    # chunked exploits clustering: fewer tests than frequency bisection
    assert clustered.chunked_tests < clustered.frequency_tests
    # both are far cheaper than testing each of the 256 queries alone
    assert clustered.chunked_tests < 128
    assert scattered.chunked_tests < 160
    # nothing dangerous: one test settles it
    assert by_layout["none"].chunked_tests == 1
