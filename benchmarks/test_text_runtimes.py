"""§V narrative — executed instructions and modelled run times.

Regenerates the per-benchmark instruction/cycle deltas the paper
reports in prose and asserts their qualitative shape: instruction
counts never grow under (almost-)perfect alias information, LULESH run
time stays flat, MiniGMG's ompif variant gains the most of its family,
and GridMini's device kernel gets *slower*.
"""

import pytest

from repro.experiments.runtimes import PAPER_NOTES, RuntimeRow, render_runtimes
from repro.workloads.base import row_names

from conftest import save_result


@pytest.fixture(scope="module")
def runtime_rows(probed_reports):
    rows = []
    for name in row_names():
        rep = probed_reports[name]
        r0 = rep.baseline_program.run()
        r1 = rep.final_program.run()
        rows.append(RuntimeRow(
            name, r0.instructions, r1.instructions, r0.cycles, r1.cycles,
            sum(r0.kernel_cycles.values()), sum(r1.kernel_cycles.values()),
            PAPER_NOTES.get(name, "")))
    return rows


def _row(rows, name):
    return next(r for r in rows if r.config == name)


def test_runtime_table(benchmark, runtime_rows, once):
    table = once(benchmark, render_runtimes, runtime_rows)
    save_result("text_runtimes", table)
    print("\n" + table)
    # inline shape checks (run under --benchmark-only)
    for r in runtime_rows:
        assert r.insts_oraql <= r.insts_orig * 1.01, r.config
    grid = _row(runtime_rows, "GridMini-offload")
    assert grid.kernel_cycles_oraql > grid.kernel_cycles_orig * 1.01
    ompif = _row(runtime_rows, "MiniGMG-ompif")
    assert ompif.cycles_oraql < ompif.cycles_orig * 0.98


def test_instructions_never_grow(runtime_rows):
    """Optimistic AA only removes work from the executed path."""
    for r in runtime_rows:
        assert r.insts_oraql <= r.insts_orig * 1.01, (
            r.config, r.insts_orig, r.insts_oraql)


def test_testsnap_seq_instructions_drop(runtime_rows):
    r = _row(runtime_rows, "TestSNAP-seq")
    assert r.insts_oraql < r.insts_orig  # paper: -1.2%


def test_minigmg_ompif_speeds_up_most(runtime_rows):
    """Paper §V-G: ompif ~8% faster; sse/omptask ~flat."""
    ompif = _row(runtime_rows, "MiniGMG-ompif")
    gain = 1.0 - ompif.cycles_oraql / ompif.cycles_orig
    assert gain > 0.02, f"ompif gained only {gain:.1%}"
    sse = _row(runtime_rows, "MiniGMG-sse")
    sse_gain = 1.0 - sse.cycles_oraql / sse.cycles_orig
    assert gain > sse_gain - 0.01


def test_gridmini_kernel_slows_down(runtime_rows):
    """Paper §V-C: ~7% slowdown on the device kernel — optimistic info
    raises register pressure past an occupancy cliff."""
    r = _row(runtime_rows, "GridMini-offload")
    assert r.kernel_cycles_orig > 0
    assert r.kernel_cycles_oraql > r.kernel_cycles_orig * 1.01, (
        r.kernel_cycles_orig, r.kernel_cycles_oraql)


def test_incremental_sweep_runs_identically(probed_reports,
                                            incremental_reports):
    """The §V table is oblivious to ``--incremental``: the final
    binaries are bit-identical, so every instruction/cycle figure above
    would reproduce exactly from the incremental sweep."""
    for name in row_names():
        assert (incremental_reports[name].final_program.exe_hash
                == probed_reports[name].final_program.exe_hash), name
    r_off = probed_reports["XSBench-seq"].final_program.run()
    r_on = incremental_reports["XSBench-seq"].final_program.run()
    assert (r_on.instructions, r_on.cycles, r_on.stdout) == \
        (r_off.instructions, r_off.cycles, r_off.stdout)


def test_lulesh_runtime_flat(runtime_rows):
    """Paper §V-E: 18.66s vs 18.51s etc. — barely affected."""
    for name in ("LULESH-seq", "LULESH-openmp", "LULESH-mpi"):
        r = _row(runtime_rows, name)
        ratio = r.cycles_oraql / r.cycles_orig
        assert 0.80 <= ratio <= 1.05, (name, ratio)
