"""The strategy lab's scored benchmark matrix.

Every registered probing strategy runs over all sixteen paper
configurations and is scored on probes-to-convergence (verdicts the
search consumed), compiles, pass executions, and wall-clock.  The
referee rules:

* the chunked-skeleton strategies (``provenance-prior``, ``mcts``) must
  land on chunked's pessimistic set *bit for bit* — same pinned
  indices, same final executable hash — on every row;
* ``frequency`` explores a different search space and may legally pin a
  different locally-maximal set (it does, on a handful of rows); it is
  held to validity (the driver verified its final sequence) and
  determinism instead;
* at least one learned strategy must beat chunked on median
  probes-to-convergence — the lab has to pay for itself.

The ``smoke`` subset (``pytest -k smoke``) is the CI job: two
workloads across every strategy plus the mcts same-seed determinism
check, no full sweep.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_strategy_lab.py -v
"""

import statistics
import time
from typing import Dict

import pytest

from repro.oraql import ProbingDriver, ProbingReport
from repro.oraql.strategies import strategy_names
from repro.workloads.base import get_config, row_names

from conftest import save_result

#: strategies that share chunked's search skeleton and therefore must
#: reproduce its exact answer everywhere
EXACT = ("provenance-prior", "mcts")

#: the CI smoke subset: cheap rows with a real (non-trivial) bisection
SMOKE_ROWS = ("LULESH-seq", "MiniFE-openmp")


def probes_of(rep: ProbingReport) -> int:
    """Probes-to-convergence: every verdict the search consumed,
    whether freshly run or served from the executable-hash cache."""
    return rep.tests_run + rep.tests_cached


@pytest.fixture(scope="module")
def lab_reports(probed_reports) -> Dict[str, Dict[str, ProbingReport]]:
    """strategy -> row -> report, for every registered strategy over
    every Fig. 4 configuration (chunked reuses the shared sweep)."""
    matrix: Dict[str, Dict[str, ProbingReport]] = {
        "chunked": dict(probed_reports)}
    for strategy in strategy_names():
        if strategy in matrix:
            continue
        matrix[strategy] = {}
        for row in row_names():
            t0 = time.time()
            rep = ProbingDriver(get_config(row), strategy=strategy).run()
            rep.wall_seconds = time.time() - t0
            matrix[strategy][row] = rep
    return matrix


def test_matrix_scores_and_agreement(lab_reports):
    """The full matrix: render the scoreboard artifact and hold every
    chunked-skeleton strategy to bit-identical agreement."""
    lines = [f"{'configuration':<22} {'strategy':<18} {'probes':>6} "
             f"{'compiles':>8} {'pass-exec':>9} {'wall-s':>7} "
             f"{'pessimistic':>11}"]
    for row in row_names():
        for strategy in strategy_names():
            rep = lab_reports[strategy][row]
            assert not rep.failed, (row, strategy, rep.error)
            assert not rep.budget_exhausted, (row, strategy)
            assert rep.strategy == strategy
            lines.append(
                f"{row:<22} {strategy:<18} {probes_of(rep):>6} "
                f"{rep.compiles:>8} {rep.pass_executions:>9} "
                f"{getattr(rep, 'wall_seconds', 0.0):>7.2f} "
                f"{len(rep.pessimistic_indices):>11}")
    table = "\n".join(lines)
    save_result("strategy_lab_matrix", table)
    print("\n" + table)

    for row in row_names():
        chunked = lab_reports["chunked"][row]
        for strategy in EXACT:
            rep = lab_reports[strategy][row]
            assert rep.pessimistic_indices == \
                chunked.pessimistic_indices, (row, strategy)
            assert rep.final_exe_hash == chunked.final_exe_hash, (
                row, strategy)


def test_frequency_is_valid_and_self_consistent(lab_reports):
    """Frequency may disagree with chunked on *which* locally-maximal
    set it pins (it does on a few rows) but never on validity: its
    final sequence passed verification and fully-optimistic rows are
    fully optimistic under every strategy."""
    disagreements = []
    for row in row_names():
        chunked = lab_reports["chunked"][row]
        freq = lab_reports["frequency"][row]
        assert not freq.failed, (row, freq.error)
        assert freq.fully_optimistic == chunked.fully_optimistic, row
        if freq.pessimistic_indices != chunked.pessimistic_indices:
            disagreements.append(row)
    # the disagreement set is small and stable — a blow-up here means
    # the frequency port changed behaviour
    assert len(disagreements) <= 6, disagreements


def test_probes_to_convergence_median(lab_reports):
    """The lab pays for itself: at least one new strategy beats chunked
    on median probes-to-convergence across the sixteen rows."""
    medians = {
        strategy: statistics.median(
            probes_of(lab_reports[strategy][row]) for row in row_names())
        for strategy in strategy_names()}
    save_result("strategy_lab_medians", "\n".join(
        f"{s:<18} {m:g}" for s, m in sorted(medians.items())))
    newcomers = [s for s in strategy_names()
                 if s not in ("chunked", "frequency")]
    assert any(medians[s] < medians["chunked"] for s in newcomers), medians


def test_prior_never_worse_than_chunked_by_much(lab_reports):
    """The prior's confidence gate bounds the downside.  A confident
    but wrong guess both wastes the probe and unbalances the split, so
    a hostile row can cost real money — the worst observed is
    LULESH-openmp at ~1.7x chunked — but the gate keeps it under 2x
    everywhere (an ungated linear scan would be ~10x)."""
    for row in row_names():
        chunked = probes_of(lab_reports["chunked"][row])
        prior = probes_of(lab_reports["provenance-prior"][row])
        assert prior <= max(8, 2 * chunked), (row, prior, chunked)


# -- CI smoke subset (pytest -k smoke) ---------------------------------------

def test_smoke_all_strategies_agree_on_two_rows():
    """Two cheap rows across every registered strategy: the
    chunked-skeleton strategies agree bit for bit, frequency verifies,
    and every report carries its strategy name."""
    for row in SMOKE_ROWS:
        reports = {s: ProbingDriver(get_config(row), strategy=s).run()
                   for s in strategy_names()}
        chunked = reports["chunked"]
        assert chunked.pessimistic_indices, row  # a real bisection
        for strategy, rep in reports.items():
            assert not rep.failed, (row, strategy, rep.error)
            assert rep.strategy == strategy
        for strategy in EXACT:
            assert reports[strategy].pessimistic_indices == \
                chunked.pessimistic_indices, (row, strategy)
            assert reports[strategy].final_exe_hash == \
                chunked.final_exe_hash, (row, strategy)


def test_smoke_mcts_same_seed_is_deterministic():
    """Same seed, same probe path: the whole report must repeat."""
    row = SMOKE_ROWS[0]
    a = ProbingDriver(get_config(row), strategy="mcts",
                      strategy_seed=7).run()
    b = ProbingDriver(get_config(row), strategy="mcts",
                      strategy_seed=7).run()
    assert a.pessimistic_indices == b.pessimistic_indices
    assert a.final_exe_hash == b.final_exe_hash
    assert (a.tests_run, a.tests_cached, a.compiles) == \
        (b.tests_run, b.tests_cached, b.compiles)


def test_smoke_frequency_rerun_is_deterministic():
    row = SMOKE_ROWS[1]
    a = ProbingDriver(get_config(row), strategy="frequency").run()
    b = ProbingDriver(get_config(row), strategy="frequency").run()
    assert a.pessimistic_indices == b.pessimistic_indices
    assert a.final_exe_hash == b.final_exe_hash
