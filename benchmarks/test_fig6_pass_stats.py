"""Fig. 6 — selected compiler statistics, original vs. ORAQL.

Regenerates every row of the paper's statistics table (asm printer
machine instructions, EarlyCSE eliminations, LICM hoists, Quicksilver's
loop-deletion/DSE/GVN explosions, register spills, vectorization
counts) and asserts the qualitative directions the paper reports.
"""

import pytest

from repro.experiments.fig6_pass_stats import (
    FIG6_ROWS,
    Fig6Row,
    PAPER_VALUES,
    render_fig6,
)

from conftest import save_result


@pytest.fixture(scope="module")
def fig6_rows(probed_reports):
    rows = []
    for (config, pass_name, stat), pval in zip(FIG6_ROWS, PAPER_VALUES):
        rep = probed_reports[config]
        original = rep.baseline_program.stats.get(pass_name, stat)
        oraql = rep.final_program.stats.get(pass_name, stat)
        rows.append(Fig6Row(config, pass_name, stat, original, oraql, pval))
    return rows


def test_fig6_table(benchmark, fig6_rows, once):
    table = once(benchmark, render_fig6, fig6_rows)
    save_result("fig6_pass_stats", table)
    print("\n" + table)
    assert len(fig6_rows) == len(FIG6_ROWS)
    # the paper's qualitative directions, checked inline so they run
    # under --benchmark-only as well
    assert _row(fig6_rows, "Quicksilver-openmp",
                "# deleted loops").oraql > _row(
        fig6_rows, "Quicksilver-openmp", "# deleted loops").original
    assert _row(fig6_rows, "Quicksilver-openmp",
                "# stores deleted").oraql > _row(
        fig6_rows, "Quicksilver-openmp", "# stores deleted").original
    for cfg in ("MiniGMG-ompif", "MiniGMG-omptask", "MiniGMG-sse"):
        r = _row(fig6_rows, cfg, "# vectorized loops")
        assert r.oraql > r.original, (cfg, r.original, r.oraql)
    for r in fig6_rows:
        if r.stat == "# loads hoisted or sunk":
            assert r.oraql >= r.original, (r.config, r.original, r.oraql)


def _row(rows, config, stat):
    return next(r for r in rows if r.config == config and r.stat == stat)


def test_quicksilver_loop_deletion_explodes(fig6_rows):
    r = _row(fig6_rows, "Quicksilver-openmp", "# deleted loops")
    assert r.oraql > r.original, (r.original, r.oraql)


def test_quicksilver_dse_grows(fig6_rows):
    r = _row(fig6_rows, "Quicksilver-openmp", "# stores deleted")
    assert r.oraql > r.original


def test_quicksilver_gvn_loads_grow(fig6_rows):
    r = _row(fig6_rows, "Quicksilver-openmp", "# loads deleted")
    assert r.oraql >= r.original

def test_licm_hoists_grow_under_oraql(fig6_rows):
    grew = 0
    for r in fig6_rows:
        if r.stat == "# loads hoisted or sunk":
            assert r.oraql >= r.original, (r.config, r.original, r.oraql)
            grew += int(r.oraql > r.original)
    assert grew >= 3, "LICM should gain hoists in several benchmarks"


def test_minigmg_vectorized_loops_grow(fig6_rows):
    for cfg in ("MiniGMG-ompif", "MiniGMG-omptask", "MiniGMG-sse"):
        r = _row(fig6_rows, cfg, "# vectorized loops")
        assert r.oraql > r.original, (cfg, r.original, r.oraql)


def test_minife_slp_grows(fig6_rows):
    r = _row(fig6_rows, "MiniFE-openmp", "# vector instructions generated")
    assert r.oraql >= r.original


def test_machine_instructions_shrink_or_hold(fig6_rows):
    """The paper's asm-printer rows shrink a few percent under ORAQL;
    dead code goes away, so ours must never grow by much."""
    for r in fig6_rows:
        if r.stat == "# machine instructions generated":
            assert r.oraql <= r.original * 1.35, (
                r.config, r.original, r.oraql)
