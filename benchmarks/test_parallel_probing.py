"""Parallel probing engine: wall-clock improvement and verdict reuse.

Probes every Fig. 4 configuration with the parallel engine (`--jobs 4`,
one worker per configuration) against a shared persistent verdict
cache, twice:

* the **cold** sweep must produce bit-identical ``pessimistic_indices``
  to the sequential driver on every workload while finishing faster
  than the sequential sweep's summed wall time (when the host grants
  more than one CPU);
* the **warm** sweep must serve verdicts from the persistent cache
  (hits > 0, strictly fewer ``tests_run``) and still agree bit-exactly.
"""

import os
import time

import pytest

from repro.experiments.tables import render_table
from repro.oraql.parallel import ParallelProbingDriver
from repro.workloads.base import get_config, row_names

from conftest import save_result

JOBS = 4


@pytest.fixture(scope="module")
def parallel_sweeps(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("verdict-cache"))
    names = row_names()
    configs = [get_config(name) for name in names]

    t0 = time.time()
    cold = ParallelProbingDriver(configs, jobs=JOBS,
                                 cache_dir=cache_dir).run()
    cold_wall = time.time() - t0

    t0 = time.time()
    warm = ParallelProbingDriver(configs, jobs=JOBS,
                                 cache_dir=cache_dir).run()
    warm_wall = time.time() - t0
    return names, cold, warm, cold_wall, warm_wall


def test_parallel_bit_identical_to_sequential(probed_reports,
                                              parallel_sweeps):
    names, cold, warm, _, _ = parallel_sweeps
    for name, cold_rep, warm_rep in zip(names, cold, warm):
        seq_rep = probed_reports[name]
        assert cold_rep.pessimistic_indices == seq_rep.pessimistic_indices, \
            f"{name}: cold parallel diverged from sequential"
        assert warm_rep.pessimistic_indices == seq_rep.pessimistic_indices, \
            f"{name}: warm parallel diverged from sequential"
        assert cold_rep.fully_optimistic == seq_rep.fully_optimistic


def test_warm_run_reuses_verdicts(parallel_sweeps):
    names, cold, warm, _, _ = parallel_sweeps
    for name, cold_rep, warm_rep in zip(names, cold, warm):
        assert warm_rep.cache_hits > 0, f"{name}: warm run hit nothing"
        assert warm_rep.tests_run < cold_rep.tests_run, \
            f"{name}: warm run did not save tests " \
            f"({warm_rep.tests_run} vs {cold_rep.tests_run})"


def test_parallel_wall_clock(benchmark, probed_reports, parallel_sweeps,
                             once):
    names, cold, warm, cold_wall, warm_wall = parallel_sweeps
    seq_wall = sum(getattr(probed_reports[n], "wall_seconds", 0.0)
                   for n in names)

    rows = [[n, f"{getattr(probed_reports[n], 'wall_seconds', 0.0):.2f}s",
             c.tests_run, w.tests_run, w.cache_hits]
            for n, c, w in zip(names, cold, warm)]
    rows.append(["TOTAL (wall)", f"{seq_wall:.2f}s",
                 f"cold {cold_wall:.2f}s", f"warm {warm_wall:.2f}s",
                 f"jobs={JOBS}"])
    table = render_table(
        ["Configuration", "sequential", "cold tests", "warm tests",
         "warm hits"],
        rows, title="Parallel probing engine — wall clock and verdict reuse")
    save_result("parallel_probing", table)
    print("\n" + table)

    once(benchmark, lambda: None)  # timings measured above, once per session
    # the warm sweep serves verdicts from the cache, so it must beat the
    # cold one regardless of how many CPUs the host grants us
    assert warm_wall < cold_wall, \
        f"warm sweep ({warm_wall:.1f}s) no faster than cold " \
        f"({cold_wall:.1f}s)"
    # the fan-out itself can only beat the summed sequential sweep when
    # there is actual parallelism to exploit
    if len(os.sched_getaffinity(0)) >= 2:
        assert cold_wall < seq_wall, \
            f"parallel sweep ({cold_wall:.1f}s) slower than sequential " \
            f"({seq_wall:.1f}s)"


def test_speculative_single_config_matches(probed_reports):
    """The speculative chunked driver (single config, branch-parallel)
    agrees bit-exactly with the sequential driver."""
    name = next((n for n in row_names()
                 if probed_reports[n].pessimistic_indices), row_names()[0])
    seq_rep = probed_reports[name]
    spec_rep = ParallelProbingDriver(get_config(name), jobs=JOBS).run()[0]
    assert spec_rep.pessimistic_indices == seq_rep.pessimistic_indices
    assert spec_rep.fully_optimistic == seq_rep.fully_optimistic
