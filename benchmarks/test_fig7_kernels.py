"""Fig. 7 — TestSNAP Kokkos/CUDA kernel static properties.

Regenerates per-kernel register counts and stack-frame sizes for the
device compilation, original vs. ORAQL, and checks the paper's shape:
only a subset of kernels change, and changes go in both directions.
"""

import pytest

from repro.experiments.fig7_kernels import Fig7Row, render_fig7

from conftest import save_result


@pytest.fixture(scope="module")
def fig7_rows(probed_reports):
    rep = probed_reports["TestSNAP-kokkos-cuda"]
    orig = rep.baseline_program.kernel_info
    final = rep.final_program.kernel_info
    return [Fig7Row(name, orig[name].registers, orig[name].stack_bytes,
                    final[name].registers, final[name].stack_bytes)
            for name in sorted(orig)]


def test_fig7_table(benchmark, fig7_rows, once):
    table = once(benchmark, render_fig7, fig7_rows)
    save_result("fig7_kernels", table)
    print("\n" + table)
    changed = [r for r in fig7_rows if r.changed]
    assert changed and len(changed) < len(fig7_rows)


def test_all_kernels_compiled(fig7_rows):
    assert len(fig7_rows) >= 6  # scaled stand-in for the paper's 44


def test_registers_within_gpu_limits(fig7_rows):
    for r in fig7_rows:
        assert 1 <= r.regs_orig <= 255
        assert 1 <= r.regs_oraql <= 255
        assert r.stack_orig >= 0 and r.stack_oraql >= 0


def test_only_subset_changes(fig7_rows):
    """Paper: 7 of 44 kernels changed — some, but not all."""
    changed = [r for r in fig7_rows if r.changed]
    assert changed, "optimistic info should perturb some kernels"
    assert len(changed) < len(fig7_rows), \
        "trivial kernels (zero/scale) should be unaffected"
