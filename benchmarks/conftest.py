"""Shared probing results for the benchmark harness.

Several figures need the same per-configuration probing runs (Fig. 4's
query statistics, Fig. 6's pass-statistics deltas, the §V runtime
table), so the sweep is done once per session and shared.

Every benchmark writes its regenerated table to
``benchmarks/results/<name>.txt`` so the paper-facing artifacts survive
the run.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

import repro.workloads  # noqa: F401 — registers all variants
from repro.oraql import ProbingDriver, ProbingReport
from repro.workloads.base import get_config, row_names

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def probed_reports() -> Dict[str, ProbingReport]:
    """Probe every Fig. 4 configuration once (chunked strategy)."""
    reports: Dict[str, ProbingReport] = {}
    for row in row_names():
        t0 = time.time()
        reports[row] = ProbingDriver(get_config(row)).run()
        reports[row].wall_seconds = time.time() - t0
    return reports


@pytest.fixture(scope="session")
def incremental_reports() -> Dict[str, ProbingReport]:
    """The same sweep with ``--incremental on``: every probe with a
    cached baseline is spliced/resumed instead of recompiled from
    scratch.  Compared field-by-field against ``probed_reports`` by the
    incremental benchmark — the two sweeps must be bit-identical."""
    reports: Dict[str, ProbingReport] = {}
    for row in row_names():
        t0 = time.time()
        reports[row] = ProbingDriver(get_config(row),
                                     incremental="on").run()
        reports[row].wall_seconds = time.time() - t0
    return reports


@pytest.fixture(scope="session")
def once():
    """Helper to run a benchmark body exactly once under
    pytest-benchmark (probing is far too heavy to repeat)."""

    def _once(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
