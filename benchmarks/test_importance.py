"""Fig. 5, measured — importance mining on real workloads.

The acceptance bar for the importance driver: on each benchmarked
workload, the mined important-query subset *alone* must recover at
least 95% of the cycle savings the full safe optimistic set buys, every
important query must be attributed to its issuing pass via the trace
layer, and a killed-and-resumed session must reproduce the fresh run
bit-identically.
"""

import pytest

import repro.workloads  # noqa: F401 — registers all variants
from repro.experiments.fig5_importance import (
    DEFAULT_WORKLOADS,
    render_fig5_importance,
    render_fig5_importance_many,
)
from repro.oraql import ImportanceDriver
from repro.workloads.base import get_config

from conftest import save_result


@pytest.fixture(scope="module")
def importance_reports():
    return {name: ImportanceDriver(get_config(name)).run()
            for name in DEFAULT_WORKLOADS}


def test_fig5_importance_tables(benchmark, once, importance_reports):
    text = once(benchmark, render_fig5_importance_many,
                list(importance_reports.values()))
    save_result("fig5_importance", text)
    print("\n" + text)
    assert text.count("Fig. 5 (measured)") == len(DEFAULT_WORKLOADS)


@pytest.mark.parametrize("name", DEFAULT_WORKLOADS)
def test_important_subset_recovers_the_win(name, importance_reports):
    rep = importance_reports[name]
    assert not rep.partial
    assert rep.total_savings > 0, \
        f"{name} must have a real optimism win to mine"
    assert rep.important, f"{name}: no important queries found"
    # the pruned set is a strict subset that keeps (almost) all value
    assert len(rep.important) < rep.safe_queries
    assert rep.recovered_percent >= 95.0, (
        f"{name}: important subset recovers only "
        f"{rep.recovered_percent:.1f}% of the optimism win")


@pytest.mark.parametrize("name", DEFAULT_WORKLOADS)
def test_important_queries_have_provenance(name, importance_reports):
    rep = importance_reports[name]
    for q in rep.important:
        assert q.issuing_pass != "?", f"q{q.index} lost its issuer"
        assert q.function, f"q{q.index} lost its function"
        assert q.fingerprint, f"q{q.index} lost its pointer fingerprint"
    # cycle savings come from enabled transforms, which leave remarks
    linked = [q for q in rep.important if q.remarks]
    assert linked, f"{name}: no important query links to a remark"


@pytest.mark.parametrize("name", DEFAULT_WORKLOADS)
def test_strict_cost_model_clean(name, importance_reports):
    rep = importance_reports[name]
    assert rep.unknown_opcodes == {}
    assert rep.unknown_intrinsics == {}


def test_resume_reproduces_fresh_run(tmp_path, importance_reports):
    # kill the session partway through the measurement phase, resume
    # from the journal, and require the mined result bit-identical
    from repro.faults.injector import (
        FaultInjector,
        FaultSpec,
        SessionKilled,
    )
    name = "MiniGMG-ompif"
    ref = ImportanceDriver(get_config(name)).run()
    jdir = str(tmp_path / "journal")
    kill_at = ref.probing.tests_run + 3
    with pytest.raises(SessionKilled):
        ImportanceDriver(get_config(name), journal_dir=jdir,
                         injector=FaultInjector(
                             [FaultSpec("session-kill", at=kill_at)])).run()
    rep = ImportanceDriver(get_config(name), journal_dir=jdir,
                           resume=True).run()
    assert rep.measurements_replayed > 0
    assert [q.index for q in rep.important] \
        == [q.index for q in ref.important]
    assert [(p.k, p.added, p.cycles) for p in rep.pareto] \
        == [(p.k, p.added, p.cycles) for p in ref.pareto]
    assert rep.baseline_cycles == ref.baseline_cycles
    assert rep.optimal_cycles == ref.optimal_cycles


def test_pareto_prefix_dominates(importance_reports):
    # the headline Fig. 5 claim on the richest workload: a small prefix
    # of the value-ordered important set already recovers most of the
    # win, and the full important set recovers >= 95%
    rep = importance_reports["MiniGMG-omptask"]
    final = rep.pareto[-1]
    assert final.percent_of_full >= 95.0
    table = render_fig5_importance(rep)
    assert "V0" in table and "V*" in table
