"""Fig. 4 — alias-query statistics for all sixteen configurations.

Regenerates the paper's main table: per configuration, the number of
optimistic / pessimistic ORAQL responses (unique and cached) under the
final sequence, and the chain-wide no-alias counts for the original vs.
ORAQL compilation.  Asserts the paper's qualitative shape: which rows
are fully optimistic, and that ORAQL always increases no-alias counts.
"""

import pytest

from repro.experiments.fig4_query_stats import Fig4Row, check_shape, render_fig4
from repro.workloads.base import get_info, row_names

from conftest import save_result


def test_fig4_table(benchmark, probed_reports, once):
    def build():
        return [Fig4Row(get_info(name), probed_reports[name])
                for name in row_names()]

    rows = once(benchmark, build)
    table = render_fig4(rows)
    path = save_result("fig4_query_stats", table)
    print("\n" + table)

    problems = []
    for row in rows:
        problems.extend(check_shape(row))
    assert not problems, "\n".join(problems)


def test_fig4_no_alias_deltas_positive(probed_reports):
    """ORAQL must add no-alias responses in every configuration (the
    rightmost Δ column of Fig. 4 is positive in every paper row)."""
    for name, rep in probed_reports.items():
        assert rep.no_alias_oraql > rep.no_alias_original, rep.summary()


def test_fig4_probing_effort_bounded(probed_reports):
    """Probing is bisection-cheap: tests grow ~k·log(n), not n."""
    for name, rep in probed_reports.items():
        n = max(1, rep.opt_unique + rep.pess_unique)
        k = rep.pess_unique
        bound = 3 + (k + 1) * (n.bit_length() + 3)
        assert rep.tests_run + rep.tests_cached <= bound, rep.summary()
