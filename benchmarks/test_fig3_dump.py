"""Fig. 3 — the ORAQL pessimistic-query dump for TestSNAP OpenMP.

Regenerates the debug output: every pessimistically-answered non-cached
query with its issuing pass, the two locations with LocationSize
descriptions, the scope (the OpenMP-outlined region), and source lines.
"""

from repro.experiments.fig3_dump import run_fig3

from conftest import save_result


def test_fig3_dump(benchmark, once):
    text = once(benchmark, run_fig3, "TestSNAP-openmp")
    save_result("fig3_dump", text)
    print("\n" + text)

    assert "[ORAQL] Pessimistic query [Cached 0]" in text
    assert "Executing Pass" in text
    # the pessimistic queries live in the outlined parallel region, as
    # in the paper's .omp_outlined._debug__.6
    assert "omp_outlined" in text
    assert "LocationSize" in text
    # debug info resolves the source lines of the pointers (sna.cpp:…)
    assert "sna.cpp:" in text
