"""Fig. 5 — software versions (provenance of the snapshot)."""

from repro.experiments.fig5_versions import PAPER_VERSIONS, VERSIONS, render_fig5

from conftest import save_result


def test_fig5_versions(benchmark, once):
    text = once(benchmark, render_fig5)
    save_result("fig5_versions", text)
    print("\n" + text)
    assert "repro (this package)" in text
    assert any("LLVM" in c for c, _ in PAPER_VERSIONS)
    assert len(VERSIONS) >= 4
