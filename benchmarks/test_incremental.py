"""Incremental recompilation on the Fig. 2 probing benchmark.

The whole workload sweep is probed twice (``probed_reports`` off,
``incremental_reports`` on) and the two sessions must agree bit for
bit: same pessimistic sets, same final executables, same query
statistics.  On top of that identity, the acceptance bar: the
incremental-eligible compiles (every compile that had a baseline
available) must cost >= 5x fewer pass executions than the same
compiles off-mode.  Session totals are reported alongside as honest
context — the ORAQL-off baseline and the first probe are irreducibly
full, so short sessions cannot reach 5x end to end.
"""

import pytest

from repro.experiments.incremental import (IncrementalRow, eligible_ratio,
                                           render_incremental, session_ratio)
from repro.workloads.base import row_names

from conftest import save_result


@pytest.fixture(scope="module")
def incremental_rows(probed_reports, incremental_reports):
    rows = []
    for name in row_names():
        off = probed_reports[name]
        on = incremental_reports[name]
        # the accounting invariant behind the eligible-compile costs:
        # both sessions ran the same compiles, and every full compile
        # of one configuration costs the same number of pass runs
        assert on.compiles == off.compiles, name
        assert off.pass_executions % off.compiles == 0, name
        rows.append(IncrementalRow(
            name, off.compiles, on.incremental_compiles,
            on.incremental_fallbacks, off.pass_executions // off.compiles,
            off.pass_executions, on.pass_executions))
    return rows


def test_incremental_probing_bit_identical(probed_reports,
                                           incremental_reports):
    """--incremental is a pure performance switch: every observable of
    the probing session is unchanged."""
    for name in row_names():
        off = probed_reports[name]
        on = incremental_reports[name]
        assert on.pessimistic_indices == off.pessimistic_indices, name
        assert on.final_program.exe_hash == off.final_program.exe_hash, name
        assert on.final_program.fn_hashes == off.final_program.fn_hashes, name
        assert (on.opt_unique, on.pess_unique, on.opt_cached,
                on.pess_cached) == (off.opt_unique, off.pess_unique,
                                    off.opt_cached, off.pess_cached), name
        assert on.unique_by_pass == off.unique_by_pass, name
        assert on.no_alias_oraql == off.no_alias_oraql, name
        assert on.tests_run == off.tests_run, name


def test_incremental_table(benchmark, incremental_rows, once):
    table = once(benchmark, render_incremental, incremental_rows)
    save_result("incremental_recompilation", table)
    print("\n" + table)
    # the acceptance bar: >= 5x fewer pass executions across the
    # incremental-eligible compiles of the whole sweep
    assert eligible_ratio(incremental_rows) >= 5.0, \
        render_incremental(incremental_rows)
    # and the session totals must still show a clear end-to-end win
    assert session_ratio(incremental_rows) > 1.5


def test_no_fallbacks(incremental_rows):
    """Every compile with a baseline available actually went through
    the incremental path — single-TU (or LTO) workloads never hit a
    fallback gate."""
    assert sum(r.fallbacks for r in incremental_rows) == 0, [
        (r.config, r.fallbacks) for r in incremental_rows if r.fallbacks]
    assert sum(r.incremental for r in incremental_rows) > 0


def test_splice_and_resume_are_exercised(incremental_reports):
    """The savings come from all three reuse layers: spliced bodies,
    mid-pipeline resumes, and the content-addressed codegen cache."""
    spliced = sum(r.functions_spliced for r in incremental_reports.values())
    resumed = sum(r.functions_resumed for r in incremental_reports.values())
    skipped = sum(r.passes_resumed_past
                  for r in incremental_reports.values())
    codegen = sum(r.codegen_cache_hits
                  for r in incremental_reports.values())
    assert spliced > 0
    assert resumed > 0
    assert skipped > 0
    assert codegen > 0
    for name, rep in incremental_reports.items():
        assert rep.incremental_enabled, name
