"""Ablation benches for the design choices DESIGN.md calls out.

1. the ORAQL query cache (paper §IV-A): how much does caching shorten
   the decision sequence the driver has to probe?
2. the executable-hash test cache (paper §IV-B): how many test runs does
   it save on real workloads?
3. chunked vs. frequency probing on a *real* workload (Fig. 2 shows the
   synthetic case);
4. the value of the existing AA chain (paper §VIII, override mode):
   what does suppressing every chain answer cost?
"""

import pytest

import repro.workloads  # noqa: F401
from repro.oraql import (
    Compiler,
    DecisionSequence,
    OraqlAAPass,
    ProbingDriver,
    measure_chain_value,
)
from repro.workloads.base import get_config

from conftest import save_result


def _sequence_consumption(row: str, cache_enabled: bool) -> int:
    cfg = get_config(row)
    from repro.frontend import compile_source
    from repro.ir import Module
    from repro.passes import CompilationContext, PassManager, build_pipeline

    modules = [compile_source(s.text, s.name) for s in cfg.sources]
    main = modules[0]
    for other in modules[1:]:
        main.link(other)
    p = OraqlAAPass(DecisionSequence(),
                    target_filter=cfg.target_filter,
                    probe_functions=cfg.probe_function_set(),
                    probe_files=cfg.probe_file_set(),
                    cache_enabled=cache_enabled)
    ctx = CompilationContext(main, oraql=p)
    PassManager(ctx).run(build_pipeline(cfg.opt_level))
    return p.sequence.consumed


def test_query_cache_ablation(benchmark, once):
    """Without the pair cache, every repeated query consumes a sequence
    entry — the probing search space explodes (paper §IV-A)."""

    def run():
        rows = {}
        for row in ("TestSNAP-openmp", "XSBench-seq", "Quicksilver-openmp"):
            with_cache = _sequence_consumption(row, True)
            without = _sequence_consumption(row, False)
            rows[row] = (with_cache, without)
        return rows

    rows = once(benchmark, run)
    lines = ["ORAQL query-cache ablation: sequence entries consumed",
             f"{'config':<22} {'cache on':>9} {'cache off':>10} {'x':>6}"]
    for row, (w, wo) in rows.items():
        lines.append(f"{row:<22} {w:>9} {wo:>10} {wo / max(1, w):>5.1f}x")
        assert wo > w, (row, w, wo)
    save_result("ablation_query_cache", "\n".join(lines))
    print("\n" + "\n".join(lines))


def test_exe_hash_cache_ablation(benchmark, once, probed_reports):
    """The executable-hash cache converts a large share of probing tests
    into lookups (paper §IV-B)."""
    total_run = sum(r.tests_run for r in probed_reports.values())
    total_cached = sum(r.tests_cached for r in probed_reports.values())
    lines = [
        "executable-hash test cache across the Fig. 4 sweep:",
        f"tests executed      : {total_run}",
        f"tests from the cache: {total_cached}",
        f"saved fraction      : {total_cached / max(1, total_run + total_cached):.1%}",
    ]
    once(benchmark, lambda: None)
    save_result("ablation_exe_hash_cache", "\n".join(lines))
    print("\n" + "\n".join(lines))
    assert total_cached > 0


def test_strategy_ablation_real_workload(benchmark, once):
    """Chunked vs. frequency probing on a real pessimistic workload."""

    def run():
        out = {}
        for strategy in ("chunked", "frequency"):
            rep = ProbingDriver(get_config("XSBench-seq"),
                                strategy=strategy).run()
            out[strategy] = (rep.tests_run + rep.tests_cached,
                             rep.pess_unique)
        return out

    out = once(benchmark, run)
    lines = ["probing strategies on XSBench-seq:",
             f"{'strategy':<12} {'tests':>6} {'pess found':>11}"]
    for strategy, (tests, pess) in out.items():
        lines.append(f"{strategy:<12} {tests:>6} {pess:>11}")
    save_result("ablation_strategy", "\n".join(lines))
    print("\n" + "\n".join(lines))
    # both converge to the same dangerous set
    assert out["chunked"][1] == out["frequency"][1]


def test_chain_value_override(benchmark, once):
    """§VIII override mode: force the chain's answers pessimistic and
    measure what the real analyses were worth."""

    def run():
        return [measure_chain_value(get_config(row))
                for row in ("Quicksilver-openmp", "MiniGMG-ompif",
                            "LULESH-seq")]

    reports = once(benchmark, run)
    lines = ["value of the existing AA chain (override mode, §VIII):"]
    for rep in reports:
        lines.append("  " + rep.summary())
        assert rep.no_alias_suppressed == 0
        assert rep.instructions_suppressed >= rep.instructions_normal
    save_result("ablation_chain_value", "\n".join(lines))
    print("\n" + "\n".join(lines))
