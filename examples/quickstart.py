#!/usr/bin/env python3
"""Quickstart: run ORAQL on a small benchmark.

The workflow is the paper's Fig. 1: provide a program (MiniC sources),
compilation instructions, and a test (the program's printed output); the
driver finds a locally-maximal set of alias queries that can be answered
"no-alias" without changing the output, and reports the queries that
*must* stay pessimistic — the true aliases.

Run:  python examples/quickstart.py
"""

from repro.oraql import BenchmarkConfig, ProbingDriver, SourceFile, render_report

# A kernel with one real alias: `smooth` is called with overlapping
# windows of the same buffer, so its dst/src queries cannot be answered
# optimistically.  Everything else (the disjoint saxpy) can.
SOURCE = r"""
void saxpy(double* y, double* x, double a, int n) {
  for (int i = 0; i < n; i++) { y[i] = y[i] + a * x[i]; }
}

void smooth(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = 0.5 * src[i] + 0.25; }
}

int main() {
  double x[40]; double y[40]; double buf[40];
  for (int i = 0; i < 40; i++) { x[i] = i; y[i] = 1.0; buf[i] = i * i; }

  saxpy(y, x, 0.5, 40);      // x and y are disjoint: safe to assume
  smooth(buf + 1, buf, 38);  // dst/src overlap: a true alias!

  double cy = 0.0;
  double cb = 0.0;
  for (int i = 0; i < 40; i++) { cy = cy + y[i]; cb = cb + buf[i] * i; }
  printf("y checksum  = %.6f\n", cy);
  printf("buf checksum = %.6f\n", cb);
  return 0;
}
"""


def main() -> None:
    config = BenchmarkConfig(
        name="quickstart",
        sources=[SourceFile("demo.c", SOURCE)],
        frontend="clang",
        opt_level=3,
    )

    # The driver compiles + runs the baseline, tries the fully optimistic
    # sequence, and bisects to the dangerous queries when that fails.
    driver = ProbingDriver(config, strategy="chunked")
    report = driver.run()

    print(render_report(report))
    print()
    print("summary:", report.summary())

    # The report tells us smooth() is the problem; saxpy's queries were
    # all answered no-alias without consequence.
    assert not report.fully_optimistic
    scopes = {rec.scope for rec in report.pessimistic_records}
    assert "smooth" in scopes, scopes
    print("\n=> the true alias lives in:", ", ".join(sorted(scopes)))


if __name__ == "__main__":
    main()
