#!/usr/bin/env python3
"""Use case 3 (paper §I): bounded tuning of the alias-analysis pipeline.

Selecting the subset of LLVM's alias analyses for a program used to be
done by hand, with no way to know when to stop.  ORAQL bounds the search
space: once a chain configuration reaches (close to) the ORAQL no-alias
count, further tuning is pointless.

This example measures the chain-wide no-alias responses of several AA
pipeline configurations against the ORAQL bound on the same benchmark.

Run:  python examples/aa_chain_tuning.py
"""

from repro.oraql import BenchmarkConfig, Compiler, ProbingDriver, SourceFile
from repro.workloads.base import get_config
import repro.workloads  # noqa: F401

#: candidate chains (all end at the same may-alias fallback)
CHAINS = {
    "basic only": ["basic-aa"],
    "basic+tbaa": ["basic-aa", "tbaa"],
    "default (LLVM -O2)": ["basic-aa", "scoped-noalias-aa", "tbaa",
                           "globals-aa"],
    "default + cfl-steens": ["basic-aa", "scoped-noalias-aa", "tbaa",
                             "globals-aa", "cfl-steens-aa"],
    "default + cfl-anders": ["basic-aa", "scoped-noalias-aa", "tbaa",
                             "globals-aa", "cfl-anders-aa"],
}


def main() -> None:
    base_cfg = get_config("Quicksilver-openmp")

    # the upper bound: (almost) perfect alias information
    report = ProbingDriver(base_cfg).run()
    bound = report.no_alias_oraql
    print(f"ORAQL bound: {bound} no-alias responses "
          f"({report.opt_unique} optimistic answers needed)\n")

    print(f"{'chain':<24} {'no-alias':>9} {'% of bound':>11}")
    results = {}
    for name, chain in CHAINS.items():
        cfg = get_config("Quicksilver-openmp")
        cfg.aa_chain = chain
        prog = Compiler().compile(cfg, oraql_enabled=False)
        run = prog.run()
        assert run.ok
        results[name] = prog.no_alias_count
        print(f"{name:<24} {prog.no_alias_count:>9} "
              f"{100.0 * prog.no_alias_count / bound:>10.1f}%")

    # tuning insight: if the default chain is already close to the
    # bound, adding the expensive CFL analyses is not worth their cost.
    default = results["default (LLVM -O2)"]
    best = max(results.values())
    print(f"\ndefault chain reaches {100.0 * default / bound:.1f}% of the "
          f"bound; the best candidate reaches {100.0 * best / bound:.1f}%")
    print("=> the remaining gap needs annotations or new analyses, not "
          "more of the existing ones (the paper's 'known bounds' insight)")


if __name__ == "__main__":
    main()
