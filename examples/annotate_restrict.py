#!/usr/bin/env python3
"""Use case 1 (paper §I): guided source annotation.

Instead of blanket-annotating every pointer parameter with ``restrict``
(maintenance cost, and a latent bug if an invariant is ever violated),
use ORAQL to find out (a) how much better alias information could help
at all, and (b) *which* functions the conservative answers live in —
then annotate only those.

This example measures the optimization statistics three ways:

1. the plain program,
2. the ORAQL (almost-)perfect-aliasing bound,
3. the program with ``restrict`` added only where ORAQL pointed,

and shows that the single targeted annotation recovers the bound.

Run:  python examples/annotate_restrict.py
"""

from repro.oraql import BenchmarkConfig, Compiler, ProbingDriver, SourceFile

KERNELS = r"""
// the hot kernel: y gets updated from two read-only fields
void gather_update(double* y, double* fields, double* weights, int n) {
  for (int i = 0; i < n; i++) {
    y[i] = y[i] + fields[i] * weights[0] + fields[i + n] * weights[1];
  }
}
"""

DRIVER = r"""
int main() {
  double y[64];
  double fields[128];
  double w[2];
  for (int i = 0; i < 64; i++) { y[i] = 0.5; }
  for (int i = 0; i < 128; i++) { fields[i] = i * 0.01; }
  w[0] = 0.75;
  w[1] = 0.25;
  for (int rep = 0; rep < 4; rep++) {
    gather_update(y, fields, w, 64);
  }
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + y[i]; }
  printf("checksum = %.9f\n", s);
  return 0;
}
"""

STAT = ("Loop Invariant Code Motion", "# loads hoisted or sunk")


def licm_stat(config):
    prog = Compiler().compile(config, oraql_enabled=False)
    run = prog.run()
    assert run.ok, run.error
    return prog.stats.get(*STAT), run.instructions


def main() -> None:
    plain = BenchmarkConfig(
        name="plain", sources=[SourceFile("app.c", KERNELS + DRIVER)])

    # 1. plain build: the weights[0]/weights[1] loads cannot be hoisted
    # out of the loop (they might alias the y[i] stores).
    hoists_plain, insts_plain = licm_stat(plain)

    # 2. the ORAQL bound: what would (almost) perfect aliasing buy?
    report = ProbingDriver(plain).run()
    hoists_bound = report.final_program.stats.get(*STAT)
    run_bound = report.final_program.run()
    print(f"plain   : {hoists_plain} LICM hoists, "
          f"{insts_plain} instructions")
    print(f"ORAQL   : {hoists_bound} LICM hoists, "
          f"{run_bound.instructions} instructions "
          f"({report.opt_unique} optimistic queries, "
          f"{report.pess_unique} pessimistic)")
    assert report.fully_optimistic, "this kernel has no true aliases"

    # 3. ORAQL says every query in gather_update is safely optimistic —
    # so annotate exactly that function and re-measure.
    annotated_src = KERNELS.replace(
        "void gather_update(double* y, double* fields, double* weights",
        "void gather_update(double* restrict y, double* restrict fields, "
        "double* restrict weights") + DRIVER
    annotated = BenchmarkConfig(
        name="annotated", sources=[SourceFile("app.c", annotated_src)])
    hoists_annotated, insts_annotated = licm_stat(annotated)
    print(f"restrict: {hoists_annotated} LICM hoists, "
          f"{insts_annotated} instructions")

    assert hoists_annotated > hoists_plain
    assert insts_annotated <= run_bound.instructions * 1.02
    print("\n=> one targeted restrict annotation recovers the ORAQL bound")


if __name__ == "__main__":
    main()
