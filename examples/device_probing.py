#!/usr/bin/env python3
"""Multi-target compilation (paper §IV-E): probe only the device code.

Offload programs compile the same source once per target.  The
``-opt-aa-target=<substring>`` shorthand restricts ORAQL to the
compilation whose target matches — here, only ``nvptx`` kernels are
probed while host code keeps its conservative answers.

The example also regenerates a Fig. 7-style per-kernel report: register
count and stack bytes of the original vs. the optimistic device
compilation, plus the resulting kernel cycle deltas.

Run:  python examples/device_probing.py
"""

from repro.oraql import BenchmarkConfig, ProbingDriver, SourceFile

SOURCE = r"""
__global__ void stencil_kernel(double* out, double* in, int n) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int i = t + 1; i < n - 1; i += total) {
    out[i] = 0.25 * in[i - 1] + 0.5 * in[i] + 0.25 * in[i + 1];
  }
}

__global__ void scale_kernel(double* buf, double s0, double s1, int n) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int i = t; i < n; i += total) {
    double v = buf[i];
    buf[i] = v * s0 + v * v * s1;
  }
}

int main() {
  int n = 96;
  double* a = (double*)malloc(n * sizeof(double));
  double* b = (double*)malloc(n * sizeof(double));
  for (int i = 0; i < n; i++) { a[i] = sin(0.1 * i); b[i] = 0.0; }
  for (int it = 0; it < 3; it++) {
    launch(stencil_kernel, 1, 16, b, a, n);
    launch(scale_kernel, 1, 16, b, 0.9, 0.01, n);
    launch(stencil_kernel, 1, 16, a, b, n);
  }
  cuda_device_synchronize();
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i]; }
  printf("lattice checksum = %.9f\n", s);
  return 0;
}
"""


def main() -> None:
    config = BenchmarkConfig(
        name="device-probing",
        sources=[SourceFile("offload.c", SOURCE)],
        target_filter="nvptx",           # the -opt-aa-target shorthand
    )
    report = ProbingDriver(config).run()
    print(report.summary())

    # every ORAQL query must come from a device function
    module = report.final_program.module
    for rec in report.final_program.oraql.records:
        fn = module.functions[rec.scope]
        assert fn.target == "nvptx", f"{rec.scope} is host code!"
    print(f"\nall {report.opt_unique + report.pess_unique} unique queries "
          "came from device (nvptx) functions")

    # Fig. 7-style static-property report
    orig = report.baseline_program.kernel_info
    final = report.final_program.kernel_info
    r0 = report.baseline_program.run()
    r1 = report.final_program.run()
    print(f"\n{'kernel':<16} {'regs':>10} {'stack B':>10} {'cycles':>16}")
    for name in sorted(orig):
        o, f = orig[name], final[name]
        c0 = r0.kernel_cycles.get(name, 0.0)
        c1 = r1.kernel_cycles.get(name, 0.0)
        print(f"{name:<16} {o.registers:>4} -> {f.registers:<4} "
              f"{o.stack_bytes:>4} -> {f.stack_bytes:<4} "
              f"{c0:>8.0f} -> {c1:<8.0f}")


if __name__ == "__main__":
    main()
