void hz8(double* x, double* acc)
{
  for (int i = 0; (i < 16); (i)++)
  {
    acc[0] = (acc[0] + x[i]);
  }
}

int main()
{
  double a0[17];
  a0[3] = (a0[3] + 0.25);
  hz8(a0, (a0 + 15));
  double c9 = 0.0;
  for (int i10 = 0; (i10 < 17); (i10)++)
  {
    c9 = (c9 + (a0[i10] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f\n", c9, 0.0, 0.0, 0.0);
}

