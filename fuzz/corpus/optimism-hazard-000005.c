void hz6(double* x, double* acc)
{
  for (int i = 0; (i < 6); (i)++)
  {
    acc[0] = (acc[0] + x[i]);
  }
}

int main()
{
  double a0[19];
  for (int i1 = 0; (i1 < 19); (i1)++)
  {
    a0[i1] = ((i1 * 0.5) + 3.0);
  }
  hz6(a0, (a0 + 5));
  double c7 = 0.0;
  for (int i8 = 0; (i8 < 19); (i8)++)
  {
    c7 = (c7 + (a0[i8] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f %.6f %.6f\n", c7, 0.0, 0.0, 0.0, 0.0, 0.0);
}

