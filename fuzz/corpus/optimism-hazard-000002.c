void hz4(double* x, double* acc)
{
  for (int i = 0; (i < 5); (i)++)
  {
    acc[0] = (acc[0] + x[i]);
  }
}

int main()
{
  double a0[9];
  for (int i1 = 0; (i1 < 9); (i1)++)
  {
    a0[i1] = ((i1 * 0.125) + 0.0);
  }
  hz4(a0, (a0 + 4));
  double c5 = 0.0;
  for (int i6 = 0; (i6 < 9); (i6)++)
  {
    c5 = (c5 + (a0[i6] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f\n", c5, 0.0, 0.0, 0.0);
}

