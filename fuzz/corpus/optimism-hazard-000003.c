void hz6(double* x, double* acc)
{
  for (int i = 0; (i < 12); (i)++)
  {
    acc[0] = (acc[0] + x[i]);
  }
}

int main()
{
  double a0[17];
  for (int i1 = 0; (i1 < 17); (i1)++)
  {
    a0[i1] = ((i1 * 1.0) + -1.0);
  }
  hz6(a0, (a0 + 11));
  double c7 = 0.0;
  for (int i8 = 0; (i8 < 17); (i8)++)
  {
    c7 = (c7 + (a0[i8] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f\n", c7, 0.0, 0.0, 0.0);
}

