void hz9(double* dst, double* src)
{
  for (int i = 0; (i < 6); (i)++)
  {
    dst[i] = (src[i] + 1.0);
  }
}

int main()
{
  double a0[20];
  hz9((a0 + 1), a0);
  double c10 = 0.0;
  for (int i11 = 0; (i11 < 20); (i11)++)
  {
    c10 = (c10 + (a0[i11] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f %.6f %.6f\n", c10, 0.0, 0.0, 0.0, 0.0, 0.0);
}

