void hz5(double* x, double* acc)
{
  for (int i = 0; (i < 8); (i)++)
  {
    acc[0] = (acc[0] + x[i]);
  }
}

int main()
{
  double a1[15];
  for (int i2 = 0; (i2 < 15); (i2)++)
  {
    a1[i2] = ((i2 * 0.25) + -2.0);
  }
  hz5(a1, (a1 + 7));
  double c8 = 0.0;
  for (int i9 = 0; (i9 < 15); (i9)++)
  {
    c8 = (c8 + (a1[i9] * 1.0));
  }
  printf("%.6f %.6f %.6f %.6f\n", 0.0, 0.0, c8, 0.0);
}

