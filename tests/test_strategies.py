"""Unit tests for the strategy layer: registry, lifecycle contract,
the provenance-prior model, and the MCTS machinery."""

import pytest

from repro.oraql import DecisionSequence, TestOutcome
from repro.oraql.strategies import (
    PriorModel,
    create_strategy,
    strategy_names,
    strategy_supports_speculation,
)
from repro.oraql.strategies.base import StrategyContext
from repro.oraql.strategies.features import (
    FP_BUCKETS,
    PASS_VOCAB,
    SHAPE_VOCAB,
    feature_indices,
    vector_width,
)
from repro.oraql.strategies.mcts import (
    ACTION_LIBRARY,
    MCTSTree,
    RewardConfig,
    compute_reward,
    split_point,
)
from repro.oraql.strategies.prior import PriorStrategy


class TestRegistry:
    def test_all_strategies_registered(self):
        assert strategy_names() == [
            "chunked", "frequency", "mcts", "provenance-prior"]

    def test_paper_strategies_first(self):
        assert strategy_names()[:2] == ["chunked", "frequency"]

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown strategy 'nope'"):
            create_strategy("nope")
        with pytest.raises(ValueError, match="chunked"):
            create_strategy("nope")

    def test_speculation_support(self):
        assert strategy_supports_speculation("chunked")
        assert not strategy_supports_speculation("frequency")
        assert not strategy_supports_speculation("provenance-prior")
        assert not strategy_supports_speculation("mcts")
        assert not strategy_supports_speculation("nope")

    def test_duplicate_name_rejected(self):
        from repro.oraql.strategies import register
        from repro.oraql.strategies.chunked import ChunkedStrategy

        class Imposter(ChunkedStrategy):
            pass

        with pytest.raises(ValueError, match="duplicate"):
            register(Imposter)
        register(ChunkedStrategy)  # same class re-registers fine


def _failing_first(n=8):
    return StrategyContext(first=TestOutcome(False, n, "exe:first"))


class TestLifecycle:
    """The propose/observe/done contract every driver loop relies on."""

    @pytest.mark.parametrize("name", strategy_names())
    def test_propose_requires_start(self, name):
        strat = create_strategy(name)
        with pytest.raises(RuntimeError):
            strat.propose()

    @pytest.mark.parametrize("name", strategy_names())
    def test_observe_rejects_foreign_probe(self, name):
        from repro.oraql.strategies.base import Probe
        strat = create_strategy(name)
        strat.start(_failing_first())
        assert not strat.done()
        strat.propose()
        with pytest.raises(RuntimeError):
            strat.observe(Probe(DecisionSequence([1])),
                          TestOutcome(True, 8, "exe:x"))

    @pytest.mark.parametrize("name", strategy_names())
    def test_result_only_after_done(self, name):
        strat = create_strategy(name)
        strat.start(_failing_first())
        with pytest.raises(RuntimeError):
            strat.result()

    @pytest.mark.parametrize("name", strategy_names())
    def test_best_known_is_a_set(self, name):
        strat = create_strategy(name)
        strat.start(_failing_first())
        assert strat.best_known() == set()


class _Rec:
    """A minimal QueryRecord stand-in for featurization."""

    class _Loc:
        def __init__(self, ptr):
            self.ptr = ptr

    def __init__(self, index=0, cached=False,
                 issuing_pass="Early CSE", a=None, b=None):
        self.index = index
        self.cached = cached
        self.issuing_pass = issuing_pass
        self.a = self._Loc(a)
        self.b = self._Loc(b)


class TestFeatures:
    def test_vector_width_accounts_for_all_slots(self):
        assert vector_width() == \
            1 + len(PASS_VOCAB) + 1 + len(SHAPE_VOCAB) + FP_BUCKETS

    def test_known_pass_one_hot(self):
        idx = feature_indices(_Rec(issuing_pass="Early CSE"))
        assert idx[0] == 0  # bias
        assert idx[1] == 1 + PASS_VOCAB.index("Early CSE")

    def test_unknown_pass_lands_in_oov_slot(self):
        idx = feature_indices(_Rec(issuing_pass="Totally New Pass"))
        assert idx[1] == 1 + len(PASS_VOCAB)

    def test_indices_in_range_and_unique(self):
        idx = feature_indices(_Rec())
        assert len(idx) == 4
        assert len(set(idx)) == 4
        assert all(0 <= i < vector_width() for i in idx)

    def test_erased_instruction_fingerprints_to_unknown_bucket(self):
        # operand-less pointers make pointer_fingerprint blow up; the
        # featurizer must absorb that into bucket 0
        idx = feature_indices(_Rec(a=None, b=None))
        assert idx[-1] == vector_width() - FP_BUCKETS  # bucket 0 slot


class TestPriorModel:
    def _samples(self):
        # dangerous iff the pass feature is "Early CSE"
        hot = feature_indices(_Rec(issuing_pass="Early CSE"))
        cold = feature_indices(_Rec(issuing_pass="Memory SSA"))
        return [(hot, True)] * 5 + [(cold, False)] * 20

    def test_fit_is_deterministic(self):
        a = PriorModel.fit(self._samples(), epochs=50)
        b = PriorModel.fit(self._samples(), epochs=50)
        assert a.weights == b.weights

    def test_fit_separates_classes(self):
        model = PriorModel.fit(self._samples(), epochs=200)
        assert model.auc(self._samples()) > 0.9
        assert model.score(_Rec(issuing_pass="Early CSE")) > \
            model.score(_Rec(issuing_pass="Memory SSA"))

    def test_save_load_roundtrip(self, tmp_path):
        model = PriorModel.fit(self._samples(), epochs=10)
        path = str(tmp_path / "m.json")
        model.save(path)
        back = PriorModel.load(path)
        assert back.weights == model.weights
        assert back.buckets == model.buckets

    def test_load_rejects_wrong_version(self, tmp_path):
        path = str(tmp_path / "m.json")
        with open(path, "w") as fh:
            fh.write('{"version": 99, "weights": []}')
        with pytest.raises(ValueError, match="format version"):
            PriorModel.load(path)

    def test_load_rejects_wrong_width(self, tmp_path):
        path = str(tmp_path / "m.json")
        with open(path, "w") as fh:
            fh.write('{"version": 1, "weights": [0.0, 1.0]}')
        with pytest.raises(ValueError, match="weights"):
            PriorModel.load(path)

    def test_load_default_never_raises(self, monkeypatch):
        import repro.oraql.strategies.prior as prior_mod
        monkeypatch.setattr(prior_mod, "DEFAULT_MODEL_PATH",
                            "/nonexistent/nope.json")
        model = PriorModel.load_default()
        assert model.weights == [0.0] * vector_width()

    def test_checked_in_artifact_loads(self):
        # the repo ships a fitted model; it must parse and be non-zero
        model = PriorModel.load_default()
        assert any(w != 0.0 for w in model.weights)
        assert model.meta.get("samples", 0) > 0


class TestPriorPick:
    def test_confident_score_overrides_midpoint(self):
        strat = PriorStrategy(model=PriorModel(
            weights=[0.0] * vector_width()))
        # absolute index 5 is hot -> probe at boundary k=6
        assert strat._pick(0, 16, 0, {5: 0.95}) == 6

    def test_flat_scores_fall_back_to_midpoint(self):
        strat = PriorStrategy(model=PriorModel(
            weights=[0.0] * vector_width()))
        # a zero model scores everything sigmoid(0)=0.5 < CONFIDENCE
        assert strat._pick(0, 16, 0, {i: 0.5 for i in range(16)}) == 8

    def test_pick_stays_inside_open_interval(self):
        strat = PriorStrategy(model=PriorModel(
            weights=[0.0] * vector_width()))
        assert strat._pick(0, 2, 0, {1: 0.99}) == 1
        assert strat._pick(4, 6, 0, {4: 0.99}) == 5


class TestMCTS:
    def test_split_points_stay_inside_open_interval(self):
        for action in ACTION_LIBRARY:
            for lo, hi in ((0, 2), (0, 16), (3, 5), (7, 100)):
                k = split_point(action, lo, hi)
                assert lo < k < hi, (action, lo, hi, k)

    def test_reward_shape(self):
        cfg = RewardConfig(isolation_reward=10.0, compile_cost=1.0)
        assert compute_reward(True, 3, cfg) == 7.0
        assert compute_reward(False, 3, cfg) == -3.0
        assert compute_reward(True, 0, cfg) > compute_reward(True, 5, cfg)

    def test_tree_search_is_seeded_deterministic(self):
        import random
        picks_a = []
        picks_b = []
        for picks, seed in ((picks_a, 7), (picks_b, 7)):
            tree = MCTSTree(0, 64, random.Random(seed))
            for _ in range(3):
                action = tree.search(32)
                picks.append(action)
                tree.advance(action, False)
        assert picks_a == picks_b

    def test_tree_advance_narrows(self):
        import random
        tree = MCTSTree(0, 64, random.Random(0))
        action = tree.search(32)
        k = split_point(action, 0, 64)
        tree.advance(action, True)
        assert (tree.root.lo, tree.root.hi) == (k, 64)

    def test_strategy_same_seed_same_probes(self):
        """Two same-seed MCTS strategies driven by the same scripted
        oracle propose identical probe sequences (the CI check)."""
        def run(seed):
            strat = create_strategy("mcts", seed=seed)
            strat.start(_failing_first(n=16))
            dangerous = {3, 11}
            probes = []
            while not strat.done():
                probe = strat.propose()
                bits = probe.sequence.bits
                ok = not any(
                    (bits[i] if i < len(bits) else 1) and i in dangerous
                    for i in range(16))
                probes.append(tuple(bits))
                strat.observe(probe, TestOutcome(ok, 16, f"exe:{bits}"))
            return probes, strat.result()

        probes_a, found_a = run(seed=5)
        probes_b, found_b = run(seed=5)
        assert probes_a == probes_b
        assert found_a == found_b == {3, 11}
