"""Golden tests for every human-readable observability surface.

Each test renders text from a fixed-seed workload (or a fake clock) and
compares it byte-for-byte against ``tests/goldens/``.  Regenerate with
``pytest tests/test_trace_goldens.py --update-goldens`` and review the
diff like any other code change.
"""

import pytest

from repro.oraql.driver import ProbingDriver
from repro.oraql.report import render_report
from repro.trace import QueryTrace, PhaseTimer
from repro.trace import summarize
from repro.trace.timer import render_tree

from test_oraql_driver import HAZARD_SRC, SAFE_SRC, cfg_of
from test_trace_layer import FakeClock


@pytest.fixture(scope="module")
def hazard_trace():
    trace = QueryTrace(clock=FakeClock(step=0.5))
    report = ProbingDriver(cfg_of(HAZARD_SRC, "hazard"), trace=trace).run()
    return trace, report


def test_statistics_report_golden(hazard_trace, golden):
    _, report = hazard_trace
    golden("stats_report.txt", report.final_program.stats.report())


def test_phase_timer_tree_golden(hazard_trace, golden):
    # the fake clock makes every phase enter/exit cost exactly 0.5s, so
    # the tree (names, nesting, counts, totals) is fully deterministic
    trace, _ = hazard_trace
    golden("phase_timer_tree.txt", render_tree(trace.timer.to_dict()))


def test_phase_timer_normalized_golden(golden):
    t = PhaseTimer(clock=FakeClock())
    with t.phase("frontend"):
        pass
    with t.phase("passes"):
        with t.phase("GVN"):
            pass
        with t.phase("GVN"):
            pass
    with t.phase("vm-run"):
        pass
    golden("phase_timer_normalized.txt", t.render(normalize=True))


def test_remark_lines_golden(hazard_trace, golden):
    trace, _ = hazard_trace
    golden("remarks_final.txt", "\n".join(trace.remark_lines("final")))


def test_driver_report_golden(hazard_trace, golden):
    # remarks ride along in the report; phase timers are wall-clock so
    # the report golden swaps in the fake-clock tree unchanged
    _, report = hazard_trace
    golden("driver_report.txt", render_report(report))


def test_summarize_golden(hazard_trace, golden):
    trace, _ = hazard_trace
    golden("trace_summary.txt",
           summarize.summarize(trace.records, trace.timer.to_dict()))


def test_query_table_safe_golden(golden):
    # second workload: fully optimistic, exercises the empty
    # pessimistic-set rendering paths
    trace = QueryTrace()
    ProbingDriver(cfg_of(SAFE_SRC, "safe"), trace=trace).run()
    golden("trace_summary_safe.txt", summarize.summarize(trace.records))
