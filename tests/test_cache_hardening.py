"""Tests for the hardened persistent verdict cache: CRC'd records,
truncated/torn/corrupt line tolerance, OSError degradation, legacy
records, and compaction."""

import json
import os

from repro.oraql import VerdictCache
from repro.oraql.cache import CACHE_SCHEMA_VERSION


def cache_at(tmp_path):
    return VerdictCache(str(tmp_path / "cache"))


class TestRoundTrip:
    def test_put_get_with_triage(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True, triage="ok")
        c.put("fp:h2", False, triage="trapped")
        r = cache_at(tmp_path)
        assert r.get_record("fp:h1") == (True, "ok")
        assert r.get_record("fp:h2") == (False, "trapped")
        assert r.get("fp:h1") is True
        assert r.get("fp:none") is None
        assert r.hits == 3 and r.misses == 1

    def test_duplicate_put_not_rewritten(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True, triage="ok")
        size = os.path.getsize(c.path)
        c.put("fp:h1", True, triage="ok")
        assert os.path.getsize(c.path) == size

    def test_legacy_record_without_crc_accepted(self, tmp_path):
        c = cache_at(tmp_path)
        with open(c.path, "a") as f:
            f.write(json.dumps({"v": CACHE_SCHEMA_VERSION,
                                "key": "fp:old", "ok": True}) + "\n")
        r = cache_at(tmp_path)
        assert r.get("fp:old") is True
        assert r.corrupt_records == 0


class TestCorruptionTolerance:
    def test_truncated_final_line(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True)
        c.put("fp:h2", False)
        with open(c.path, "rb+") as f:
            f.truncate(f.seek(0, 2) - 11)
        r = cache_at(tmp_path)
        assert r.get("fp:h1") is True
        assert "fp:h2" not in r
        assert r.corrupt_records == 1

    def test_crc_mismatch_skipped(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True, triage="ok")
        with open(c.path) as f:
            line = f.read()
        with open(c.path, "w") as f:
            f.write(line.replace('"ok":true', '"ok":false'))
        r = cache_at(tmp_path)
        assert "fp:h1" not in r
        assert r.corrupt_records == 1

    def test_garbage_lines_counted_not_fatal(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True)
        with open(c.path, "a") as f:
            f.write("not json\n")
            f.write(json.dumps(["a", "list"]) + "\n")
            f.write(json.dumps({"v": CACHE_SCHEMA_VERSION,
                                "key": 42, "ok": "yes"}) + "\n")
        r = cache_at(tmp_path)
        assert r.get("fp:h1") is True
        assert r.corrupt_records == 3

    def test_foreign_schema_ignored_silently(self, tmp_path):
        c = cache_at(tmp_path)
        with open(c.path, "a") as f:
            f.write(json.dumps({"v": CACHE_SCHEMA_VERSION + 1,
                                "key": "fp:x", "ok": True}) + "\n")
        r = cache_at(tmp_path)
        assert "fp:x" not in r
        assert r.corrupt_records == 0

    def test_unreadable_file_is_cold_cache(self, tmp_path):
        c = cache_at(tmp_path)
        os.mkdir(c.path)  # the cache *file* path is now a directory
        r = VerdictCache(str(tmp_path / "cache"))
        assert len(r) == 0
        assert r.load_errors == 1
        r.put("fp:h1", True)  # appends fail but must not raise
        assert r.dropped_writes == 1
        assert r.get("fp:h1") is True  # still served from memory

    def test_refresh_picks_up_concurrent_appends(self, tmp_path):
        a = cache_at(tmp_path)
        b = cache_at(tmp_path)
        a.put("fp:h1", True, triage="ok")
        assert "fp:h1" not in b
        b.refresh()
        assert b.get_record("fp:h1") == (True, "ok")


class TestCompaction:
    def test_compact_dedups_and_drops_corruption(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True)
        c.put("fp:h2", False, triage="trapped")
        with open(c.path, "a") as f:
            f.write("torn garbage\n")
            # a superseding duplicate, as concurrent writers produce
            f.write(VerdictCache._encode("fp:h1", True, "ok") + "\n")
        before, after = c.compact()
        assert before == 4 and after == 2
        r = cache_at(tmp_path)
        assert r.corrupt_records == 0
        assert r.get_record("fp:h1") == (True, "ok")
        assert r.get_record("fp:h2") == (False, "trapped")

    def test_stats(self, tmp_path):
        c = cache_at(tmp_path)
        c.put("fp:h1", True)
        c.get("fp:h1")
        c.get("fp:h2")
        s = c.stats()
        assert s["records"] == 1
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["corrupt_records"] == 0
        assert s["dropped_writes"] == 0
        assert s["load_errors"] == 0
        assert s["path"] == c.path
