"""Tests for the ORAQL core: decision sequences, the pass (cache, dumps,
scoping), and the verification script."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    AliasResult,
    LocationSize,
    MemoryLocation,
    build_aa_chain,
)
from repro.ir import F64, FunctionType, IRBuilder, Module, VOID, ptr
from repro.oraql import (
    ARG_MAX,
    DecisionSequence,
    DumpFlags,
    OraqlAAPass,
    VerificationScript,
    all_optimistic,
    sequence_from_pessimistic_set,
)
from repro.oraql.verify import RunResult


class TestDecisionSequence:
    def test_text_roundtrip(self):
        s = DecisionSequence([1, 0, 1, 1, 0])
        assert s.to_text() == "1 0 1 1 0"
        assert DecisionSequence.from_text(s.to_text()) == s

    def test_bad_token(self):
        with pytest.raises(ValueError):
            DecisionSequence.from_text("1 0 2")

    def test_exhaustion_is_optimistic(self):
        s = DecisionSequence([0])
        assert s.next() is False
        assert s.next() is True
        assert s.next() is True
        assert s.consumed == 3

    def test_empty_sequence_all_optimistic(self):
        s = all_optimistic()
        assert all(s.next() for _ in range(10))

    def test_argument_inline(self):
        s = DecisionSequence([1, 0])
        arg = s.to_argument()
        assert arg == "-opt-aa-seq=1 0"
        assert DecisionSequence.from_argument(arg) == s

    def test_argument_spills_to_file(self, tmp_path):
        s = DecisionSequence([1] * 5000)
        arg = s.to_argument(workdir=str(tmp_path))
        assert arg.startswith("-opt-aa-seq=@")
        assert DecisionSequence.from_argument(arg) == s
        path = arg.split("@", 1)[1]
        assert os.path.exists(path)

    def test_from_pessimistic_set(self):
        s = sequence_from_pessimistic_set({1, 3})
        assert s.bits == [1, 0, 1, 0]
        assert sequence_from_pessimistic_set(set()).bits == []
        assert sequence_from_pessimistic_set({0}, length=3).bits == [0, 1, 1]

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_roundtrip_property(self, bits):
        s = DecisionSequence(bits)
        assert DecisionSequence.from_text(s.to_text()).bits == s.bits


@pytest.fixture
def fn_locs(module):
    fn = module.add_function(
        FunctionType(VOID, [ptr(F64), ptr(F64), ptr(F64)]), "f",
        ["a", "b", "c"])
    IRBuilder(fn.add_block("entry"))
    P8 = LocationSize.precise_(8)
    la = MemoryLocation(fn.args[0], P8)
    lb = MemoryLocation(fn.args[1], P8)
    lc = MemoryLocation(fn.args[2], P8)
    return fn, la, lb, lc


class TestOraqlPass:
    def test_sequence_consumed_per_unique_query(self, fn_locs):
        fn, la, lb, lc = fn_locs
        p = OraqlAAPass(DecisionSequence([1, 0]))
        assert p.answer(la, lb, fn, "GVN") is AliasResult.NO
        assert p.answer(la, lc, fn, "GVN") is AliasResult.MAY
        assert p.opt_unique == 1 and p.pess_unique == 1

    def test_cache_ignores_location_size(self, fn_locs):
        """Paper §IV-A: queries are identical if they have the same
        pointer pair, regardless of the location descriptions."""
        fn, la, lb, _ = fn_locs
        p = OraqlAAPass(DecisionSequence([1]))
        assert p.answer(la, lb, fn, "GVN") is AliasResult.NO
        big = la.with_size(LocationSize.before_or_after_pointer())
        assert p.answer(big, lb, fn, "LICM") is AliasResult.NO
        assert p.unique_queries == 1
        assert p.cached_queries == 1

    def test_cache_is_unordered(self, fn_locs):
        fn, la, lb, _ = fn_locs
        p = OraqlAAPass(DecisionSequence([0]))
        assert p.answer(la, lb, fn, "GVN") is AliasResult.MAY
        assert p.answer(lb, la, fn, "DSE") is AliasResult.MAY
        assert p.pess_unique == 1 and p.pess_cached == 1

    def test_consistency_across_passes(self, fn_locs):
        """The same pair must get the same answer everywhere — the
        self-consistency the cache exists to provide."""
        fn, la, lb, _ = fn_locs
        p = OraqlAAPass(DecisionSequence([1]))
        answers = {p.answer(la, lb, fn, who)
                   for who in ("GVN", "LICM", "DSE", "Memory SSA")}
        assert answers == {AliasResult.NO}

    def test_unique_count_reported(self, fn_locs):
        fn, la, lb, lc = fn_locs
        p = OraqlAAPass(DecisionSequence())
        p.answer(la, lb, fn, "x")
        p.answer(la, lc, fn, "x")
        p.answer(lb, lc, fn, "x")
        p.answer(la, lb, fn, "x")
        stats = p.statistics()
        assert stats["unique queries"] == 3
        assert stats["cached queries"] == 1
        assert p.sequence.consumed == 3

    def test_target_filter(self, module):
        host = module.add_function(FunctionType(VOID, [ptr(F64), ptr(F64)]),
                                   "h", target="host")
        dev = module.add_function(FunctionType(VOID, [ptr(F64), ptr(F64)]),
                                  "d", target="nvptx")
        P8 = LocationSize.precise_(8)
        p = OraqlAAPass(DecisionSequence(), target_filter="nvptx")
        lh = (MemoryLocation(host.args[0], P8),
              MemoryLocation(host.args[1], P8))
        ld = (MemoryLocation(dev.args[0], P8),
              MemoryLocation(dev.args[1], P8))
        assert p.answer(*lh, host, "x") is AliasResult.MAY  # filtered out
        assert p.answer(*ld, dev, "x") is AliasResult.NO
        assert p.unique_queries == 1

    def test_probe_function_scope_covers_outlined(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64), ptr(F64)]),
                                 "kernel.omp_outlined..0")
        P8 = LocationSize.precise_(8)
        p = OraqlAAPass(DecisionSequence(), probe_functions={"kernel"})
        l = (MemoryLocation(fn.args[0], P8), MemoryLocation(fn.args[1], P8))
        assert p.answer(*l, fn, "x") is AliasResult.NO

    def test_probe_file_scope(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64), ptr(F64)]),
                                 "f")
        fn.source_file = "other.c"
        P8 = LocationSize.precise_(8)
        p = OraqlAAPass(DecisionSequence(), probe_files={"sna.cpp"})
        l = (MemoryLocation(fn.args[0], P8), MemoryLocation(fn.args[1], P8))
        assert p.answer(*l, fn, "x") is AliasResult.MAY

    def test_dump_requires_one_of_each_axis(self):
        assert not DumpFlags(first=True).any()
        assert not DumpFlags(optimistic=True).any()
        assert DumpFlags(first=True, pessimistic=True).any()

    def test_pessimistic_records_render_like_fig3(self, fn_locs):
        fn, la, lb, _ = fn_locs
        p = OraqlAAPass(DecisionSequence([0]))
        p.answer(la, lb, fn, "Global Value Numbering")
        recs = p.pessimistic_records()
        assert len(recs) == 1
        text = "\n".join(recs[0].render())
        assert "[ORAQL] Pessimistic query [Cached 0]" in text
        assert "[ORAQL] Scope: f" in text
        assert "LocationSize" in text


class TestVerificationScript:
    def test_exact_match(self):
        v = VerificationScript(["hello\n"])
        assert v.check(RunResult("hello\n", "done"))
        assert not v.check(RunResult("hellO\n", "done"))

    def test_filters_mask_noise(self):
        v = VerificationScript(
            ["result 5\ntime <T>\n"],
            filters=[(r"time .*", "time <T>")])
        assert v.check(RunResult("result 5\ntime 0.123\n", "done"))
        assert not v.check(RunResult("result 6\ntime 0.123\n", "done"))

    def test_multiple_references(self):
        v = VerificationScript(["a\n", "b\n"])
        assert v.check(RunResult("a\n", "done"))
        assert v.check(RunResult("b\n", "done"))
        assert not v.check(RunResult("c\n", "done"))

    def test_failed_runs_never_verify(self):
        v = VerificationScript(["x\n"])
        assert not v.check(RunResult("x\n", "trapped", "boom"))
        assert not v.check(RunResult("x\n", "blocked"))

    def test_needs_reference(self):
        with pytest.raises(ValueError):
            VerificationScript([])

    def test_explain(self):
        v = VerificationScript(["abcdef\n"])
        msg = v.explain(RunResult("abcxef\n", "done"))
        assert "mismatch" in msg
        assert "ok" == v.explain(RunResult("abcdef\n", "done"))


# -- property-based tests (hypothesis) ----------------------------------------

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=200)


class TestDecisionSequenceProperties:
    """Round-trip and bisection-split invariants for DecisionSequence."""

    @given(bit_lists)
    def test_text_roundtrip(self, bits):
        s = DecisionSequence(bits)
        assert DecisionSequence.from_text(s.to_text()) == s

    @given(bit_lists)
    def test_argument_roundtrip_inline(self, bits):
        with DecisionSequence(bits) as s:
            arg = s.to_argument(arg_max=10 ** 9)
            assert not arg.startswith("-opt-aa-seq=@")
            assert DecisionSequence.from_argument(arg) == s

    @given(st.lists(st.integers(min_value=0, max_value=1),
                    min_size=1, max_size=200))
    def test_argument_roundtrip_response_file(self, tmp_path_factory, bits):
        # arg_max=0 forces @file transport regardless of length
        tmp = str(tmp_path_factory.mktemp("seq"))
        with DecisionSequence(bits) as s:
            arg = s.to_argument(workdir=tmp, arg_max=0)
            assert arg.startswith("-opt-aa-seq=@")
            assert DecisionSequence.from_argument(arg) == s
            path = arg[len("-opt-aa-seq=@"):]
            assert os.path.exists(path)
        assert not os.path.exists(path)  # context exit cleans up

    @given(bit_lists, st.integers(min_value=0, max_value=20))
    def test_next_replays_bits_then_goes_optimistic(self, bits, extra):
        s = DecisionSequence(bits)
        answers = [s.next() for _ in range(len(bits) + extra)]
        assert answers[:len(bits)] == [bool(b) for b in bits]
        assert all(answers[len(bits):])  # past the end: no-alias
        assert s.consumed == len(bits) + extra
        s.reset()
        assert s.consumed == 0

    @given(st.sets(st.integers(min_value=0, max_value=100)))
    def test_pessimistic_set_roundtrip(self, pess):
        s = sequence_from_pessimistic_set(pess)
        assert len(s) == (max(pess) + 1 if pess else 0)
        recovered = {i for i, b in enumerate(s.bits) if b == 0}
        assert recovered == pess

    @given(st.sets(st.integers(min_value=0, max_value=50)),
           st.integers(min_value=0, max_value=80))
    def test_pessimistic_set_with_explicit_length(self, pess, length):
        s = sequence_from_pessimistic_set(pess, length=length)
        assert len(s) == length
        assert {i for i, b in enumerate(s.bits) if b == 0} \
            == {i for i in pess if i < length}

    @given(bit_lists, st.data())
    def test_bisection_split_invariants(self, decided, data):
        # mirror of ProbingDriver._probe_chunked's candidate builder:
        # g(k) keeps the decided prefix, answers the next k queries
        # optimistically, and pads the rest (+ TAIL_PAD) pessimistically
        from repro.oraql.driver import ProbingDriver

        span = data.draw(st.integers(min_value=1, max_value=30))
        pad = ProbingDriver.TAIL_PAD

        def g_bits(k):
            return decided + [1] * k + [0] * (span - k + pad)

        k1 = data.draw(st.integers(min_value=0, max_value=span))
        k2 = data.draw(st.integers(min_value=k1, max_value=span))
        s1, s2 = DecisionSequence(g_bits(k1)), DecisionSequence(g_bits(k2))
        # every candidate covers the whole span plus the safety tail
        assert len(s1) == len(decided) + span + pad
        # prefix stability: raising k only flips 0s to 1s after the
        # shared prefix, never touches decided answers
        assert s1.bits[:len(decided)] == s2.bits[:len(decided)] == \
            [1 if b else 0 for b in decided]
        assert s1.bits[:len(decided) + k1] == s2.bits[:len(decided) + k1]
        # monotone: the k2 candidate is at least as optimistic
        assert sum(s1.bits) <= sum(s2.bits)
        # k = 0 answers the whole span pessimistically
        s0 = DecisionSequence(g_bits(0))
        assert all(b == 0 for b in s0.bits[len(decided):])
