"""Property-based tests (Hypothesis) for the trace layer.

Three invariant families from the issue:

1. exporter round-trips — any well-formed record stream survives
   JSONL *and* Chrome trace_event export/parse bit-identically;
2. timer invariants — for any phase-entry sequence, every node has
   ``self_time >= 0`` and its children's totals sum to <= its total;
3. provenance completeness — every query ORAQL answers during a real
   probing session appears in the trace exactly once, with its index.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oraql.driver import ProbingDriver
from repro.trace import PhaseTimer, QueryTrace
from repro.trace import events as ev
from repro.trace import export

from test_oraql_driver import HAZARD_SRC, cfg_of
from test_trace_layer import FakeClock

# -- record-stream strategy --------------------------------------------

_name = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"),
                           whitelist_characters="_.%- "),
    min_size=1, max_size=12)
_responder = st.sampled_from(
    ["tbaa", "basic-aa", ev.RESPONDER_ORAQL, ev.RESPONDER_OVERRIDE,
     ev.RESPONDER_NONE])


@st.composite
def _query_records(draw):
    responder = draw(_responder)
    kwargs = {}
    if responder == ev.RESPONDER_ORAQL:
        kwargs = dict(cached=draw(st.booleans()),
                      index=draw(st.integers(0, 99)),
                      optimistic=draw(st.booleans()))
    stack = draw(st.lists(_name, max_size=3))
    return ev.query_record(
        stack[-1] if stack else "<none>", stack, draw(_name),
        draw(st.text("0123456789abcdef", min_size=12, max_size=12)),
        responder, draw(st.sampled_from(["NoAlias", "MayAlias"])),
        **kwargs)


_records = st.lists(
    st.one_of(
        st.builds(ev.meta_record, _name,
                  st.sampled_from(["chunked", "frequency"])),
        st.builds(ev.compile_record, st.integers(1, 9), _name,
                  st.one_of(st.none(),
                            st.lists(st.integers(0, 1), max_size=6))),
        _query_records(),
        st.builds(ev.remark_record, _name, _name, _name,
                  st.lists(st.integers(0, 99), max_size=4)),
        st.builds(ev.stat_record, _name, _name, st.integers(0, 10**6)),
        st.builds(ev.done_record, st.lists(st.integers(0, 99), max_size=6)),
    ),
    max_size=30)


@given(_records)
@settings(max_examples=60)
def test_jsonl_roundtrip(tmp_path_factory, records):
    path = str(tmp_path_factory.mktemp("jsonl") / "t.jsonl")
    export.write_jsonl(path, records)
    assert export.read_jsonl(path) == records


@given(_records)
@settings(max_examples=60)
def test_chrome_roundtrip_is_lossless_and_valid(records):
    doc = export.chrome_document(records)
    assert export.validate_chrome(doc) == []
    back, _tree = export.parse_chrome(doc)
    assert back == records


# -- timer invariants --------------------------------------------------

# a phase program: push (name) / pop instructions, interpreted with a
# bounded stack so pops never underflow
_phase_prog = st.lists(
    st.one_of(st.sampled_from(["frontend", "passes", "GVN", "LICM",
                               "codegen", "vm-run"]),
              st.just(None)),  # None = pop
    max_size=40)


def _run_program(prog, clock):
    timer = PhaseTimer(clock=clock)
    open_cms = []
    for op in prog:
        if op is None:
            if open_cms:
                open_cms.pop().__exit__(None, None, None)
        elif len(open_cms) < 6:
            cm = timer.phase(op)
            cm.__enter__()
            open_cms.append(cm)
    while open_cms:
        open_cms.pop().__exit__(None, None, None)
    return timer


def _check_node(node, is_root=False):
    assert node.total >= 0
    if not is_root:
        # the synthetic root never runs as a phase itself, so its own
        # total stays 0; the invariants hold for every real phase node
        assert node.self_time >= -1e-9
        assert (sum(c.total for c in node.children.values())
                <= node.total + 1e-9)
    for child in node.children.values():
        _check_node(child)


@given(_phase_prog, st.floats(0.001, 2.0))
@settings(max_examples=80)
def test_timer_tree_invariants(prog, step):
    timer = _run_program(prog, FakeClock(step=step))
    _check_node(timer.root, is_root=True)
    # the dict form preserves the invariants through a round-trip
    back = PhaseTimer.from_dict(timer.to_dict())
    _check_node(back.root, is_root=True)
    assert back.to_dict() == timer.to_dict()


@given(_phase_prog, _phase_prog)
@settings(max_examples=40)
def test_timer_merge_preserves_invariants_and_counts(prog_a, prog_b):
    a = _run_program(prog_a, FakeClock())
    b = _run_program(prog_b, FakeClock())
    count_a = a.root.children.get("passes")
    count_b = b.root.children.get("passes")
    expected = ((count_a.count if count_a else 0)
                + (count_b.count if count_b else 0))
    a.merge_dict(b.to_dict())
    _check_node(a.root, is_root=True)
    merged = a.root.children.get("passes")
    assert (merged.count if merged else 0) == expected


# -- provenance completeness ------------------------------------------

@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(["chunked", "frequency"]))
def test_provenance_completeness(strategy):
    """Every unique ORAQL answer of the final compile appears in the
    trace exactly once as an uncached query event carrying its index;
    cached re-asks reference an already-introduced index."""
    trace = QueryTrace()
    report = ProbingDriver(cfg_of(HAZARD_SRC, "hazard"),
                           strategy=strategy, trace=trace).run()
    final = trace.query_records("final")
    oraql = [r for r in final if r["responder"] == ev.RESPONDER_ORAQL]
    unique = [r for r in oraql if not r["cached"]]
    cached = [r for r in oraql if r["cached"]]
    n_unique = report.opt_unique + report.pess_unique
    assert sorted(r["index"] for r in unique) == list(range(n_unique))
    assert len(cached) == report.opt_cached + report.pess_cached
    seen = set()
    for r in oraql:
        if r["cached"]:
            assert r["index"] in seen
        else:
            assert r["index"] not in seen
            seen.add(r["index"])
        # every event names its issuing pass and enclosing function
        assert r["pass"] and r["function"]
        assert len(r["fp"]) == 12
    # pessimistic indices in the done record are answered pessimistically
    pess = set(report.pessimistic_indices)
    for r in unique:
        assert r["optimistic"] == (r["index"] not in pess)
