"""Tests for the codegen layer: lowering counts, register allocation,
GPU kernel static properties."""

import pytest

from repro.codegen import (
    DEFAULT_REGS,
    codegen_function,
    compile_device_kernels,
    compile_kernel,
    gpu_pressure,
    gpu_register_width,
    linear_scan,
    lower_function,
    machine_inst_count,
    register_class,
    run_codegen,
)
from repro.frontend import compile_source
from repro.ir import (
    F32,
    F64,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    VectorType,
    VOID,
    ptr,
)
from repro.passes import Statistics


class TestLowering:
    def test_register_classes(self):
        assert register_class(I64) == "int"
        assert register_class(ptr(F64)) == "int"
        assert register_class(F64) == "fp"
        assert register_class(VectorType(F64, 4)) == "fp"
        assert register_class(VOID) is None

    def test_gpu_register_width(self):
        assert gpu_register_width(F64) == 2
        assert gpu_register_width(F32) == 1
        assert gpu_register_width(I32) == 1
        assert gpu_register_width(ptr(F64)) == 2
        assert gpu_register_width(VectorType(F64, 4)) == 8

    def test_machine_counts(self, module):
        fn = module.add_function(
            FunctionType(F64, [ptr(F64), I64]), "f")
        b = IRBuilder(fn.add_block("e"))
        g = b.gep(fn.args[0], [fn.args[1]])     # 1 (variable index)
        g2 = b.gep(fn.args[0], [3])             # 0 (folds into addressing)
        v = b.load(g)                           # 1
        w = b.load(g2)                          # 1
        s = b.fadd(v, w)                        # 1
        b.ret(s)                                # 1
        lowered = lower_function(fn)
        assert lowered.machine_insts == 5

    def test_phi_becomes_copies(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        e, t, j = (fn.add_block(n) for n in "etj")
        b = IRBuilder(e)
        c = b.icmp("sgt", fn.args[0], b.i64(0))
        b.cond_br(c, t, j)
        b.position_at_end(t)
        v = b.add(fn.args[0], b.i64(1))
        b.br(j)
        b.position_at_end(j)
        phi = b.phi(I64)
        phi.add_incoming(b.i64(0), e)
        phi.add_incoming(v, t)
        b.ret(phi)
        lowered = lower_function(fn)
        assert lowered.phi_copies == 2

    def test_frame_bytes_from_allocas(self, module):
        from repro.ir import ArrayType
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("e"))
        b.alloca(ArrayType(F64, 10))
        b.alloca(I64)
        b.ret()
        assert lower_function(fn).frame_bytes == 88


class TestRegAlloc:
    def _pressure_fn(self, module, n_live):
        """n_live simultaneously-live float values."""
        fn = module.add_function(FunctionType(F64, [F64]), f"p{n_live}")
        b = IRBuilder(fn.add_block("e"))
        vals = [b.fmul(fn.args[0], b.f64(float(i + 1)))
                for i in range(n_live)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.fadd(acc, v)
        b.ret(acc)
        return fn

    def test_no_spills_under_pressure_limit(self, module):
        fn = self._pressure_fn(module, 8)
        res = linear_scan(lower_function(fn))
        assert res.spills == 0

    def test_spills_above_register_count(self, module):
        fn = self._pressure_fn(module, DEFAULT_REGS["fp"] + 8)
        res = linear_scan(lower_function(fn))
        assert res.spills > 0

    def test_spills_inflate_machine_insts(self, module):
        lo = codegen_function(self._pressure_fn(module, 4))
        hi = codegen_function(self._pressure_fn(module, 40))
        assert hi.spills > lo.spills
        assert hi.machine_insts > lo.machine_insts


class TestGPU:
    SRC = """
    __global__ void small(double* a, int n) {
      int t = cuda_thread_id();
      if (t < n) { a[t] = t * 2.0; }
    }
    __global__ void big(double* a, double* b, int n) {
      int t = cuda_thread_id();
      if (t < n) {
        double x0 = a[t]; double x1 = a[t + 1]; double x2 = a[t + 2];
        double x3 = a[t + 3]; double x4 = a[t + 4]; double x5 = a[t + 5];
        double x6 = a[t + 6]; double x7 = a[t + 7];
        b[t] = x0 * x1 + x2 * x3 + x4 * x5 + x6 * x7
             + x0 * x2 + x1 * x3 + x4 * x6 + x5 * x7;
      }
    }
    int main() { return 0; }
    """

    def test_kernel_info_collected(self):
        m = compile_source(self.SRC)
        kernels = compile_device_kernels(m)
        assert set(kernels) == {"small", "big"}
        assert kernels["big"].registers > kernels["small"].registers
        assert all(k.registers <= 255 for k in kernels.values())

    def test_host_functions_excluded(self):
        m = compile_source(self.SRC)
        assert "main" not in compile_device_kernels(m)

    def test_run_codegen_reports_stats(self):
        m = compile_source(self.SRC)
        stats = Statistics()
        out = run_codegen(m, stats, target="host")
        assert "main" in out
        assert stats.get("asm printer",
                         "# machine instructions generated") > 0


class TestStatistics:
    def test_counter_accumulation(self):
        s = Statistics()
        s.add("LICM", "# loads hoisted or sunk", 3)
        s.add("LICM", "# loads hoisted or sunk", 2)
        assert s.get("LICM", "# loads hoisted or sunk") == 5

    def test_report_format(self):
        s = Statistics()
        s.add("GVN", "# loads deleted", 7)
        text = s.report()
        assert "===--- Statistics Collected ---===" in text
        assert "7 GVN - # loads deleted" in text

    def test_by_pass(self):
        s = Statistics()
        s.add("A", "x", 1)
        s.add("A", "y", 2)
        s.add("B", "x", 3)
        assert s.by_pass("A") == {"x": 1, "y": 2}
