"""Tests for the loop passes: LICM, loop deletion, loop-load-elim,
memcpyopt, machine sinking, and both vectorizers."""

import pytest

from repro.frontend import compile_source
from repro.ir import (
    F64,
    FunctionType,
    I64,
    IRBuilder,
    LoadInst,
    StoreInst,
    VOID,
    VectorType,
    ptr,
    verify_module,
)
from repro.passes import CompilationContext, PassManager, parse_pipeline

from helpers import differential, run_main

PRE = "simplifycfg,mem2reg,instcombine,simplifycfg,early-cse"


def run_passes(module, spec):
    ctx = CompilationContext(module, verify_each=True)
    PassManager(ctx).run(parse_pipeline(spec))
    verify_module(module)
    return ctx


class TestLICM:
    def test_invariant_load_hoisted(self):
        src = """
        void f(double* out, double* scale, int n) {
          for (int i = 0; i < n; i++) {
            out[i] = scale[0] * 2.0;
          }
        }
        int main() {
          double o[8]; double s[1];
          s[0] = 3.0;
          f(o, s, 8);
          printf("%.1f\\n", o[7]);
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(m, PRE + ",licm")
        # scale[0] may alias out[i]: conservative pipeline cannot hoist
        assert ctx.stats.get("Loop Invariant Code Motion",
                             "# loads hoisted or sunk") == 0
        assert run_main(m).output() == "6.0\n"

    def test_invariant_load_hoisted_with_restrict(self):
        src = """
        void f(double* restrict out, double* restrict scale, int n) {
          for (int i = 0; i < n; i++) {
            out[i] = scale[0] * 2.0;
          }
        }
        int main() {
          double o[8]; double s[1];
          s[0] = 3.0;
          f(o, s, 8);
          printf("%.1f\\n", o[7]);
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(m, PRE + ",licm")
        assert ctx.stats.get("Loop Invariant Code Motion",
                             "# loads hoisted or sunk") >= 1
        assert run_main(m).output() == "6.0\n"

    def test_scalar_promotion_semantics(self):
        src = """
        int main() {
          double acc[1];
          double data[16];
          acc[0] = 0.0;
          for (int i = 0; i < 16; i++) { data[i] = i * 1.0; }
          for (int i = 0; i < 16; i++) {
            acc[0] = acc[0] + data[i];
          }
          printf("%.1f\\n", acc[0]);
          return 0;
        }
        """
        assert differential(src) == "120.0\n"

    def test_div_not_speculated(self):
        """A loop whose body divides only under a guard must not trap
        after LICM (division is not speculatable)."""
        src = """
        int main() {
          int n = 4;
          int d = 0;
          int s = 0;
          for (int i = 0; i < n; i++) {
            if (d > 0) { s = s + 100 / d; }
            s = s + i;
          }
          printf("%d\\n", s);
          return 0;
        }
        """
        assert differential(src) == "6\n"


class TestLoopDeletion:
    def test_effect_free_loop_deleted(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        pre, hdr, body, ex = (fn.add_block(n) for n in ("p", "h", "b", "x"))
        b = IRBuilder(pre)
        b.br(hdr)
        b.position_at_end(hdr)
        i = b.phi(I64)
        c = b.icmp("slt", i, b.i64(100))
        b.cond_br(c, body, ex)
        b.position_at_end(body)
        v = b.mul(i, b.i64(3))
        i2 = b.add(i, b.i64(1))
        b.br(hdr)
        i.add_incoming(b.i64(0), pre)
        i.add_incoming(i2, body)
        b.position_at_end(ex)
        b.ret()
        ctx = run_passes(module, "loop-deletion")
        assert ctx.stats.get("Delete dead loops", "# deleted loops") == 1
        assert len(fn.blocks) == 2

    def test_loop_with_store_survives(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        pre, hdr, body, ex = (fn.add_block(n) for n in ("p", "h", "b", "x"))
        b = IRBuilder(pre)
        b.br(hdr)
        b.position_at_end(hdr)
        i = b.phi(I64)
        c = b.icmp("slt", i, b.i64(4))
        b.cond_br(c, body, ex)
        b.position_at_end(body)
        g = b.gep(fn.args[0], [i])
        b.store(b.f64(1.0), g)
        i2 = b.add(i, b.i64(1))
        b.br(hdr)
        i.add_incoming(b.i64(0), pre)
        i.add_incoming(i2, body)
        b.position_at_end(ex)
        b.ret()
        ctx = run_passes(module, "loop-deletion")
        assert ctx.stats.get("Delete dead loops", "# deleted loops") == 0

    def test_used_value_blocks_deletion(self, module):
        fn = module.add_function(FunctionType(I64, []), "f")
        pre, hdr, body, ex = (fn.add_block(n) for n in ("p", "h", "b", "x"))
        b = IRBuilder(pre)
        b.br(hdr)
        b.position_at_end(hdr)
        i = b.phi(I64)
        c = b.icmp("slt", i, b.i64(4))
        b.cond_br(c, body, ex)
        b.position_at_end(body)
        i2 = b.add(i, b.i64(1))
        b.br(hdr)
        i.add_incoming(b.i64(0), pre)
        i.add_incoming(i2, body)
        b.position_at_end(ex)
        b.ret(i)  # out-of-loop use
        ctx = run_passes(module, "loop-deletion")
        assert ctx.stats.get("Delete dead loops", "# deleted loops") == 0

    def test_audit_chain_dse_then_deletion(self):
        """The Quicksilver audit pattern: overwritten summary store
        enables DSE, the dead reduction then enables loop deletion."""
        src = """
        int main() {
          double t[8];
          double rep[2];
          for (int i = 0; i < 8; i++) { t[i] = i * 1.0; }
          double c = 0.0;
          for (int i = 0; i < 8; i++) { c = c + t[i]; }
          rep[0] = c;
          rep[0] = 42.0;
          printf("%.1f\\n", rep[0]);
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(
            m, PRE + ",licm,gvn,dse,instcombine,dce,loop-deletion")
        assert ctx.stats.get("Delete dead loops", "# deleted loops") >= 1
        assert run_main(m).output() == "42.0\n"


class TestLoopVectorizer:
    VEC_SRC = """
    void axpy(double* restrict y, double* restrict x, double a, int n) {
      for (int i = 0; i < n; i++) {
        y[i] = y[i] + a * x[i];
      }
    }
    int main() {
      double x[23]; double y[23];
      for (int i = 0; i < 23; i++) { x[i] = i; y[i] = 2.0 * i; }
      axpy(y, x, 0.5, 23);
      double s = 0.0;
      for (int i = 0; i < 23; i++) { s = s + y[i]; }
      printf("%.2f\\n", s);
      return 0;
    }
    """

    def test_vectorizes_and_matches_scalar(self):
        out = differential(self.VEC_SRC)
        m = compile_source(self.VEC_SRC)
        ctx = run_passes(m, PRE + ",licm,gvn,loop-vectorize,instcombine,dce")
        assert ctx.stats.get("Loop Vectorizer", "# vectorized loops") >= 1
        assert run_main(m).output() == out

    def test_epilogue_handles_remainder(self):
        """23 = 5*4 + 3: the scalar epilogue covers the last 3 lanes."""
        m = compile_source(self.VEC_SRC)
        run_passes(m, PRE + ",loop-vectorize,instcombine,dce")
        axpy = m.get_function("axpy")
        vec_stores = [i for i in axpy.instructions()
                      if isinstance(i, StoreInst)
                      and isinstance(i.value.type, VectorType)]
        scal_stores = [i for i in axpy.instructions()
                       if isinstance(i, StoreInst)
                       and not isinstance(i.value.type, VectorType)]
        assert vec_stores and scal_stores

    def test_may_alias_blocks_vectorization(self):
        src = self.VEC_SRC.replace("restrict ", "")
        m = compile_source(src)
        run_passes(m, PRE + ",loop-vectorize")
        axpy = m.get_function("axpy")
        assert not any(isinstance(i, StoreInst)
                       and isinstance(i.value.type, VectorType)
                       for i in axpy.instructions())

    def test_fp_reduction_not_vectorized(self):
        src = """
        double total(double* restrict a, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) { s = s + a[i]; }
          return s;
        }
        int main() {
          double a[16];
          for (int i = 0; i < 16; i++) { a[i] = 0.1 * i; }
          printf("%.6f\\n", total(a, 16));
          return 0;
        }
        """
        m = compile_source(src)
        run_passes(m, PRE + ",loop-vectorize")
        total = m.get_function("total")
        assert not any(isinstance(i.type, VectorType)
                       for i in total.instructions())
        differential(src)

    def test_int_reduction_vectorized_exactly(self):
        src = """
        int main() {
          int a[20];
          int s = 0;
          int out[20];
          for (int i = 0; i < 20; i++) { a[i] = i * 7 - 3; }
          for (int i = 0; i < 20; i++) {
            out[i] = a[i] * 2;
            s = s + a[i];
          }
          printf("%d %d\\n", s, out[19]);
          return 0;
        }
        """
        assert differential(src) == "1270 260\n"

    def test_dependent_loop_miscompiles_only_if_forced(self):
        """x[i+1] = f(x[i]) must not be vectorized by honest AA."""
        src = """
        int main() {
          double x[32];
          for (int i = 0; i < 32; i++) { x[i] = 1.0 + i; }
          double* src_p = x;
          double* dst_p = x + 1;
          for (int i = 0; i < 24; i++) {
            dst_p[i] = src_p[i] * 0.5 + 1.0;
          }
          double s = 0.0;
          for (int i = 0; i < 32; i++) { s = s + x[i]; }
          printf("%.6f\\n", s);
          return 0;
        }
        """
        differential(src)


class TestSLP:
    SRC = """
    void quad(double* restrict out, double* restrict a,
              double* restrict b) {
      out[0] = a[0] + b[0];
      out[1] = a[1] + b[1];
      out[2] = a[2] + b[2];
      out[3] = a[3] + b[3];
    }
    int main() {
      double a[4]; double b[4]; double o[4];
      for (int i = 0; i < 4; i++) { a[i] = i; b[i] = 10.0 * i; }
      quad(o, a, b);
      printf("%.1f %.1f\\n", o[0], o[3]);
      return 0;
    }
    """

    def test_slp_fires_and_matches(self):
        out = differential(self.SRC)
        m = compile_source(self.SRC)
        ctx = run_passes(m, PRE + ",slp-vectorizer,instcombine,dce")
        assert ctx.stats.get("SLP Vectorizer",
                             "# vector instructions generated") >= 3
        assert run_main(m).output() == out == "0.0 33.0\n"

    def test_slp_blocked_by_possible_overlap(self):
        src = self.SRC.replace("restrict ", "")
        m = compile_source(src)
        ctx = run_passes(m, PRE + ",slp-vectorizer")
        # out may alias a/b: the interleaved loads cannot be moved
        assert ctx.stats.get("SLP Vectorizer",
                             "# store groups vectorized") == 0


class TestLoopLoadElimAndMemcpy:
    def test_store_to_load_in_loop(self):
        src = """
        int main() {
          double a[8]; double b[8];
          for (int i = 0; i < 8; i++) { b[i] = i; }
          for (int i = 0; i < 8; i++) {
            a[i] = b[i] * 2.0;
            double t = a[i];
            b[i] = t + 1.0;
          }
          printf("%.1f %.1f\\n", a[7], b[7]);
          return 0;
        }
        """
        assert differential(src) == "14.0 15.0\n"

    def test_machine_sink_load_past_branch(self):
        src = """
        int main() {
          double a[4];
          a[0] = 5.0;
          double v = a[0];
          int c = 1;
          if (c > 0) { printf("%.1f\\n", v); }
          return 0;
        }
        """
        assert differential(src) == "5.0\n"
