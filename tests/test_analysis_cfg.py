"""Tests for CFG utilities, dominators, dominance frontiers, loops."""

import pytest

from repro.analysis import (
    DominatorTree,
    Loop,
    LoopInfo,
    loop_trip_count,
    predecessor_map,
    reverse_postorder,
)
from repro.ir import FunctionType, I1, I64, IRBuilder, Module, VOID
from repro.passes.mem2reg import dominance_frontiers


def diamond(module):
    """entry -> (then | else) -> join -> exit"""
    fn = module.add_function(FunctionType(VOID, [I1]), "f")
    e, t, f, j = (fn.add_block(n) for n in ("e", "t", "f", "j"))
    b = IRBuilder(e)
    b.cond_br(fn.args[0], t, f)
    for bb in (t, f):
        b.position_at_end(bb)
        b.br(j)
    b.position_at_end(j)
    b.ret()
    return fn, (e, t, f, j)


def counted_loop(module, start=0, bound=10, step=1):
    fn = module.add_function(FunctionType(VOID, []), "loop")
    pre, hdr, body, ex = (fn.add_block(n) for n in ("pre", "hdr", "body", "ex"))
    b = IRBuilder(pre)
    b.br(hdr)
    b.position_at_end(hdr)
    i = b.phi(I64, "i")
    c = b.icmp("slt", i, b.i64(bound))
    b.cond_br(c, body, ex)
    b.position_at_end(body)
    i2 = b.add(i, b.i64(step))
    b.br(hdr)
    i.add_incoming(b.i64(start), pre)
    i.add_incoming(i2, body)
    b.position_at_end(ex)
    b.ret()
    return fn, (pre, hdr, body, ex), i


class TestOrderings:
    def test_rpo_entry_first(self, module):
        fn, (e, t, f, j) = diamond(module)
        rpo = reverse_postorder(fn)
        assert rpo[0] is e
        assert rpo[-1] is j
        assert set(rpo) == {e, t, f, j}

    def test_rpo_skips_unreachable(self, module):
        fn, blocks = diamond(module)
        dead = fn.add_block("dead")
        IRBuilder(dead).ret()
        assert dead not in reverse_postorder(fn)

    def test_predecessor_map(self, module):
        fn, (e, t, f, j) = diamond(module)
        preds = predecessor_map(fn)
        assert set(preds[j]) == {t, f}
        assert preds[e] == []


class TestDominators:
    def test_diamond(self, module):
        fn, (e, t, f, j) = diamond(module)
        dt = DominatorTree(fn)
        assert dt.dominates_block(e, j)
        assert not dt.dominates_block(t, j)
        assert dt.idom[j] is e
        assert dt.idom[t] is e

    def test_loop_header_dominates_body(self, module):
        fn, (pre, hdr, body, ex), _ = counted_loop(module)
        dt = DominatorTree(fn)
        assert dt.dominates_block(hdr, body)
        assert dt.dominates_block(hdr, ex)
        assert not dt.dominates_block(body, ex)

    def test_instruction_dominance(self, module):
        fn, (pre, hdr, body, ex), i = counted_loop(module)
        dt = DominatorTree(fn)
        cmp_ = hdr.instructions[1]
        add_ = body.instructions[0]
        assert dt.dominates(i, cmp_)
        assert dt.dominates(cmp_, add_)
        assert not dt.dominates(add_, cmp_)  # only via backedge

    def test_dominance_frontier_diamond(self, module):
        fn, (e, t, f, j) = diamond(module)
        dt = DominatorTree(fn)
        df = dominance_frontiers(fn, dt)
        assert df[t] == {j}
        assert df[f] == {j}
        assert df[e] == set()

    def test_dominance_frontier_loop(self, module):
        fn, (pre, hdr, body, ex), _ = counted_loop(module)
        dt = DominatorTree(fn)
        df = dominance_frontiers(fn, dt)
        assert hdr in df[body]  # backedge frontier


class TestLoops:
    def test_detects_loop(self, module):
        fn, (pre, hdr, body, ex), _ = counted_loop(module)
        li = LoopInfo(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header is hdr
        assert loop.blocks == {hdr, body}
        assert loop.preheader() is pre
        assert loop.latches() == [body]
        assert loop.exit_blocks() == [ex]
        assert loop.exiting_blocks() == [hdr]

    def test_trip_count(self, module):
        fn, _, _ = counted_loop(module, 0, 10, 1)
        li = LoopInfo(fn)
        assert loop_trip_count(li.loops[0]) == 10

    def test_trip_count_stride(self, module):
        fn, _, _ = counted_loop(module, 0, 10, 3)
        li = LoopInfo(fn)
        assert loop_trip_count(li.loops[0]) == 4

    def test_trip_count_unknown_bound(self, module):
        fn = module.add_function(FunctionType(VOID, [I64]), "g")
        pre, hdr, body, ex = (fn.add_block(n) for n in ("p", "h", "b", "x"))
        b = IRBuilder(pre)
        b.br(hdr)
        b.position_at_end(hdr)
        i = b.phi(I64)
        c = b.icmp("slt", i, fn.args[0])
        b.cond_br(c, body, ex)
        b.position_at_end(body)
        i2 = b.add(i, b.i64(1))
        b.br(hdr)
        i.add_incoming(b.i64(0), pre)
        i.add_incoming(i2, body)
        b.position_at_end(ex)
        b.ret()
        li = LoopInfo(fn)
        assert loop_trip_count(li.loops[0]) is None

    def test_nested_loops(self):
        from repro.frontend import compile_source
        src = """
        void f(double* a, int n) {
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
              a[i * n + j] = 1.0;
            }
          }
        }
        """
        m = compile_source(src)
        li = LoopInfo(m.get_function("f"))
        assert len(li.loops) == 2
        inner = [l for l in li.loops if not l.subloops]
        outer = [l for l in li.loops if l.subloops]
        assert len(inner) == 1 and len(outer) == 1
        assert inner[0].parent is outer[0]
        assert inner[0].depth == 2
