"""Tests for the campaign runner and the ``python -m repro.fuzz`` CLI."""

import os

import pytest

from repro.fuzz.campaign import (
    CampaignOptions,
    CampaignReport,
    SELF_TEST_SIZE_LIMIT,
    _is_hazard_seed,
    run_campaign,
    run_seed,
)
from repro.fuzz.cli import build_parser, main
from repro.fuzz.corpus import load_corpus


class TestHazardCoin:
    def test_self_test_forces_hazard(self):
        opts = CampaignOptions(self_test=True, hazard_rate=0.0)
        assert all(_is_hazard_seed(s, opts) for s in range(50))

    def test_rate_zero_and_one(self):
        zero = CampaignOptions(hazard_rate=0.0)
        one = CampaignOptions(hazard_rate=1.0)
        assert not any(_is_hazard_seed(s, zero) for s in range(50))
        assert all(_is_hazard_seed(s, one) for s in range(50))

    def test_coin_is_deterministic_per_seed(self):
        opts = CampaignOptions(hazard_rate=0.5)
        flips = [_is_hazard_seed(s, opts) for s in range(100)]
        assert flips == [_is_hazard_seed(s, opts) for s in range(100)]
        assert any(flips) and not all(flips)


class TestRunSeed:
    def test_clean_seed(self):
        r = run_seed(1000, CampaignOptions(hazard_rate=0.0, reduce=False))
        assert r.seed == 1000 and not r.hazard
        assert r.clean
        assert r.compiles >= 7
        assert r.outcomes["pessimistic"] == "match"

    def test_self_test_seed_is_caught_and_reduced(self):
        r = run_seed(2, CampaignOptions(self_test=True))
        assert r.hazard and r.hazard_calls
        assert r.optimism_divergent and r.optimism_caught
        assert r.clean
        assert 0 < r.reduced_size <= SELF_TEST_SIZE_LIMIT
        assert r.corpus_entry is not None
        assert r.corpus_entry.kind == "optimism-hazard"

    def test_strategies_all_cross_checks_each_divergence(self):
        """--strategies all: every registered strategy re-bisects a
        divergent case; the chunked-skeleton ones must agree with the
        primary and none may produce a strategy-mismatch finding."""
        from repro.oraql.strategies import strategy_names
        r = run_seed(2, CampaignOptions(self_test=True, reduce=False,
                                        strategies=strategy_names()))
        assert r.optimism_divergent and r.optimism_caught
        assert r.clean, r.findings
        for name in strategy_names()[1:]:
            assert r.outcomes[f"strategy-{name}"] in ("match", "valid")
        # the chunked-skeleton strategies agree exactly
        assert r.outcomes["strategy-mcts"] == "match"
        assert r.outcomes["strategy-provenance-prior"] == "match"


class TestRunCampaign:
    def test_sequential_campaign_with_corpus(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        opts = CampaignOptions(seeds=2, self_test=True, corpus_dir=corpus,
                               max_corpus_entries=1)
        seen = []
        report = run_campaign(opts, progress=seen.append)
        assert report.seeds_run == 2 == len(seen)
        assert report.ok
        # the cap limits what lands on disk, and render() reports the
        # written count, not the candidate count
        assert len(report.corpus_written) == 1
        assert len(load_corpus(corpus)) == 1
        assert "corpus             : 1 minimized reproducers" \
            in report.render()

    def test_time_budget_degrades_gracefully(self):
        opts = CampaignOptions(seeds=50, time_budget=1e-9, hazard_rate=0.0)
        report = run_campaign(opts)
        assert report.budget_exhausted
        assert report.seeds_run < 50
        assert "TIME BUDGET EXHAUSTED" in report.render()

    def test_empty_report_renders(self):
        report = CampaignReport(options=CampaignOptions(seeds=0))
        assert report.ok
        assert "0/0 seeds" in report.render()


class TestCli:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.seeds == 200 and args.jobs == 1
        assert not args.self_test

    @pytest.mark.parametrize("argv", [
        ["--seeds", "0"],
        ["--jobs", "0"],
        ["--hazard-rate", "1.5"],
    ])
    def test_rejects_bad_values(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_end_to_end_exit_zero(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        rc = main(["--seeds", "1", "--self-test", "--quiet",
                   "--corpus-dir", corpus,
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: 1/1 seeds" in out
        assert os.path.isdir(corpus)
