"""Unit tests for values, instructions, blocks, functions, modules."""

import pytest

from repro.ir import (
    ArrayType,
    BasicBlock,
    BranchInst,
    ConstantFloat,
    ConstantInt,
    F64,
    Function,
    FunctionType,
    GEPInst,
    I1,
    I32,
    I64,
    IRBuilder,
    LoadInst,
    Module,
    PhiInst,
    StoreInst,
    StructType,
    UndefValue,
    VOID,
    VerificationError,
    print_module,
    module_hash,
    ptr,
    verify_function,
    verify_module,
)


class TestUseLists:
    def test_operand_use_tracking(self, module):
        fn = module.add_function(FunctionType(I64, [I64, I64]), "f")
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        s = b.add(fn.args[0], fn.args[1])
        r = b.mul(s, s)
        b.ret(r)
        assert r in s.users
        assert s in fn.args[0].users

    def test_replace_all_uses_with(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        a = b.add(fn.args[0], b.i64(1))
        c = b.mul(a, a)
        b.ret(c)
        new = ConstantInt(I64, 7)
        a.replace_all_uses_with(new)
        assert c.operands[0] is new and c.operands[1] is new
        assert c not in a.users

    def test_erase_drops_uses(self, module):
        fn = module.add_function(FunctionType(VOID, [I64]), "f")
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        a = b.add(fn.args[0], b.i64(1))
        b.ret()
        a.erase_from_parent()
        assert a not in fn.args[0].users
        assert a.parent is None

    def test_constant_int_canonical_signed(self):
        c = ConstantInt(I32, 0xFFFFFFFF)
        assert c.value == -1
        assert ConstantInt(I64, -5).value == -5
        assert ConstantInt(I1, 3).value == 1


class TestGEP:
    def test_result_type_array(self):
        base = UndefValue(ptr(ArrayType(F64, 8)))
        g = GEPInst(base, [ConstantInt(I64, 0), ConstantInt(I64, 3)])
        assert g.type == ptr(F64)

    def test_result_type_struct(self):
        s = StructType("p", [I64, F64], ["a", "b"])
        base = UndefValue(ptr(s))
        g = GEPInst(base, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        assert g.type == ptr(F64)

    def test_constant_offset(self):
        s = StructType("p", [I64, F64], ["a", "b"])
        base = UndefValue(ptr(s))
        g = GEPInst(base, [ConstantInt(I64, 2), ConstantInt(I64, 1)])
        assert g.constant_offset() == 2 * s.size() + 8

    def test_variable_offset_is_none(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64), I64]), "f")
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        g = b.gep(fn.args[0], [fn.args[1]])
        assert g.constant_offset() is None
        base, const, varp = g.decomposed()
        assert base is fn.args[0] and const == 0
        assert varp == [(fn.args[1], 8)]

    def test_struct_gep_requires_constant(self):
        s = StructType("p", [I64, F64])
        base = UndefValue(ptr(s))
        with pytest.raises(TypeError):
            GEPInst(base, [ConstantInt(I64, 0), UndefValue(I64)])


class TestBlocksAndCFG:
    def test_successors(self, module):
        fn = module.add_function(FunctionType(VOID, [I1]), "f")
        e = fn.add_block("e")
        t = fn.add_block("t")
        f = fn.add_block("f")
        b = IRBuilder(e)
        b.cond_br(fn.args[0], t, f)
        for bb in (t, f):
            b.position_at_end(bb)
            b.ret()
        assert e.successors == [t, f]
        assert t.predecessors == [e]

    def test_phi_incoming(self, module):
        fn = module.add_function(FunctionType(I64, [I1]), "f")
        e, t, j = (fn.add_block(x) for x in "etj")
        b = IRBuilder(e)
        b.cond_br(fn.args[0], t, j)
        b.position_at_end(t)
        b.br(j)
        b.position_at_end(j)
        phi = b.phi(I64)
        phi.add_incoming(b.i64(1), e)
        phi.add_incoming(b.i64(2), t)
        b.ret(phi)
        assert phi.incoming_for_block(t).value == 2
        phi.remove_incoming(t)
        assert phi.incoming_for_block(t) is None

    def test_insert_at_front_respects_phis(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        bb = fn.add_block("e")
        b = IRBuilder(bb)
        phi = PhiInst(I64)
        phi.parent = bb
        bb.instructions.insert(0, phi)
        inst = b.i64(1)
        from repro.ir import BinaryInst
        add = BinaryInst("add", inst, inst)
        bb.insert_at_front(add)
        assert bb.instructions[0] is phi
        assert bb.instructions[1] is add


class TestVerifier:
    def _fn(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        return fn, IRBuilder(fn.add_block("entry"))

    def test_accepts_valid(self, module):
        fn, b = self._fn(module)
        v = b.load(fn.args[0])
        b.store(v, fn.args[0])
        b.ret()
        verify_function(fn)

    def test_missing_terminator(self, module):
        fn, b = self._fn(module)
        b.load(fn.args[0])
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_use_before_def_same_block(self, module):
        fn, b = self._fn(module)
        v = b.load(fn.args[0])
        b.ret()
        # move the load after the ret by hand
        bb = fn.entry
        bb.instructions.remove(v)
        bb.instructions.append(v)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_store_type_mismatch(self, module):
        fn, b = self._fn(module)
        from repro.ir import StoreInst, ConstantInt
        bad = StoreInst.__new__(StoreInst)
        # constructing via Instruction to bypass the builder assert
        from repro.ir.instructions import Instruction
        Instruction.__init__(bad, VOID, [ConstantInt(I64, 1), fn.args[0]])
        bad.is_volatile = False
        fn.entry.append(bad)
        b.ret()
        with pytest.raises(VerificationError, match="type mismatch"):
            verify_function(fn)

    def test_void_return_value(self, module):
        fn, b = self._fn(module)
        from repro.ir import ReturnInst
        fn.entry.append(ReturnInst(ConstantInt(I64, 0)))
        with pytest.raises(VerificationError):
            verify_function(fn)


class TestModule:
    def test_duplicate_function_rejected(self, module):
        module.add_function(FunctionType(VOID, []), "f")
        with pytest.raises(KeyError):
            module.add_function(FunctionType(VOID, []), "f")

    def test_declare_then_define_via_link(self):
        m1 = Module("a")
        f1 = m1.add_function(FunctionType(I64, [I64]), "callee")
        f1.is_declaration = True
        main = m1.add_function(FunctionType(I64, []), "main")
        b = IRBuilder(main.add_block("e"))
        call = b.call(f1, [b.i64(5)])
        b.ret(call)

        m2 = Module("b")
        f2 = m2.add_function(FunctionType(I64, [I64]), "callee")
        b2 = IRBuilder(f2.add_block("e"))
        b2.ret(b2.add(f2.args[0], b2.i64(1)))

        m1.link(m2)
        assert not m1.get_function("callee").is_declaration
        # the call must point at the definition (callee fixup)
        assert call.callee is m1.get_function("callee")

    def test_duplicate_definition_link_fails(self):
        m1, m2 = Module("a"), Module("b")
        for m in (m1, m2):
            f = m.add_function(FunctionType(VOID, []), "f")
            IRBuilder(f.add_block("e")).ret()
        with pytest.raises(KeyError):
            m1.link(m2)

    def test_add_string_interning(self, module):
        g = module.add_string("hi %d\n")
        assert g.is_constant
        assert g.value_type.count == len("hi %d\n") + 1

    def test_module_hash_changes_with_content(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.ret(b.add(fn.args[0], b.i64(1)))
        h1 = module_hash(module)
        # change the constant: hash must change
        fn.blocks[0].instructions[0].set_operand(1, ConstantInt(I64, 2))
        assert module_hash(module) != h1

    def test_print_module_roundtrip_stability(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.ret(b.add(fn.args[0], b.i64(1)))
        assert print_module(module) == print_module(module)
