"""Tests for the optional/extension features: the inliner pass, the
ORAQL query-cache ablation toggle, and the §VIII override mode."""

import pytest

from repro.frontend import compile_source
from repro.ir import LoadInst, verify_module
from repro.oraql import (
    BenchmarkConfig,
    Compiler,
    DecisionSequence,
    OraqlAAPass,
    OraqlOverridePass,
    SourceFile,
    measure_chain_value,
)
from repro.passes import CompilationContext, PassManager, parse_pipeline

from helpers import run_main


class TestInliner:
    SRC = """
    double square(double x) { return x * x; }
    double combine(double* restrict a, double* restrict b) {
      return a[0] * b[0] + a[1] * b[1];
    }
    int main() {
      double u[2]; double v[2];
      u[0] = 3.0; u[1] = 4.0; v[0] = 0.5; v[1] = 2.0;
      printf("%.2f %.2f\\n", square(1.5), combine(u, v));
      return 0;
    }
    """

    def _run(self, src, spec):
        m = compile_source(src)
        ctx = CompilationContext(m, verify_each=True)
        PassManager(ctx).run(parse_pipeline(spec))
        verify_module(m)
        return m, ctx

    def test_inlines_and_preserves_semantics(self):
        m, ctx = self._run(self.SRC, "simplifycfg,inline,mem2reg,"
                                     "instcombine,simplifycfg,dce")
        assert ctx.stats.get("Function Integration/Inlining",
                             "# functions inlined") == 2
        assert run_main(m).output() == "2.25 9.50\n"
        # no call instructions to the inlined functions remain
        from repro.ir import CallInst
        main = m.get_function("main")
        callees = {i.callee_name for i in main.instructions()
                   if isinstance(i, CallInst)}
        assert callees == {"printf"}

    def test_restrict_becomes_scoped_metadata(self):
        """Inlining a restrict callee must leave alias-scope metadata on
        the inlined accesses (clang's behaviour)."""
        m, _ = self._run(self.SRC, "simplifycfg,inline")
        main = m.get_function("main")
        scoped = [i for i in main.instructions()
                  if isinstance(i, LoadInst) and i.scoped is not None
                  and i.scoped.alias_scopes]
        assert len(scoped) >= 2  # combine's a[0..1]/b[0..1] loads

    def test_recursive_functions_not_inlined(self):
        src = """
        int fact(int n) {
          if (n < 2) { return 1; }
          return n * fact(n - 1);
        }
        int main() { printf("%d\\n", fact(5)); return 0; }
        """
        m, ctx = self._run(src, "simplifycfg,inline,mem2reg,dce")
        assert run_main(m).output() == "120\n"

    def test_big_functions_not_inlined(self):
        body = "\n".join(f"  s = s + a[{i % 4}] * {i}.0;" for i in range(40))
        src = ("double big(double* a) {\n  double s = 0.0;\n"
               + body + "\n  return s;\n}\n"
               "int main() { double z[4]; z[0]=1.0; z[1]=2.0; z[2]=0.0;"
               " z[3]=1.0; printf(\"%.0f\\n\", big(z)); return 0; }")
        m, ctx = self._run(src, "simplifycfg,inline")
        assert ctx.stats.get("Function Integration/Inlining",
                             "# functions inlined") == 0

    def test_inlined_loop_semantics(self):
        src = """
        void fill(double* a, int n, double v) {
          for (int i = 0; i < n; i++) { a[i] = v + i; }
        }
        int main() {
          double buf[6];
          fill(buf, 6, 10.0);
          double s = 0.0;
          for (int i = 0; i < 6; i++) { s = s + buf[i]; }
          printf("%.0f\\n", s);
          return 0;
        }
        """
        m, ctx = self._run(src, "simplifycfg,inline,mem2reg,instcombine,"
                                "simplifycfg,early-cse,dce")
        assert ctx.stats.get("Function Integration/Inlining",
                             "# functions inlined") == 1
        assert run_main(m).output() == "75\n"

    def test_kernels_never_inlined(self):
        src = """
        __global__ void k(double* a) { a[0] = 1.0; }
        int main() {
          double* a = (double*)malloc(8);
          launch(k, 1, 1, a);
          printf("%.0f\\n", a[0]);
          return 0;
        }
        """
        m, ctx = self._run(src, "inline")
        assert "k" in m.functions
        assert run_main(m).output() == "1\n"


HAZARD_SRC = """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double buf[64];
  double weights[64];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  for (int i = 0; i < 64; i++) { weights[i] = 0.5 * i; }
  scale_shift(buf + 1, buf, 60);
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + buf[i] * weights[i]; }
  printf("%.6f\\n", s);
  return 0;
}
"""


class TestCacheAblation:
    def test_cache_off_consumes_sequence_per_query(self):
        cfg = BenchmarkConfig(name="c", sources=[SourceFile("t.c",
                                                            HAZARD_SRC)])
        compiler = Compiler()

        def consumed(cache_enabled):
            from repro.oraql.pass_ import OraqlAAPass as P
            import repro.oraql.compiler as C
            # compile manually so we can pass the toggle
            prog = compiler.compile(cfg, oraql_enabled=True,
                                    sequence=DecisionSequence())
            if cache_enabled:
                return prog.oraql.sequence.consumed
            # rebuild with the cache off
            from repro.frontend import compile_source as cs
            from repro.passes import (CompilationContext, PassManager,
                                      build_pipeline)
            m = cs(HAZARD_SRC, "t.c")
            p = P(DecisionSequence(), cache_enabled=False)
            ctx = CompilationContext(m, oraql=p)
            PassManager(ctx).run(build_pipeline(3))
            return p.sequence.consumed

        with_cache = consumed(True)
        without = consumed(False)
        # the paper's rationale: caching shortens the probing sequence
        assert without > with_cache

    def test_cache_off_still_compiles_consistently(self):
        from repro.frontend import compile_source as cs
        from repro.passes import CompilationContext, PassManager, build_pipeline
        m = cs(HAZARD_SRC, "t.c")
        p = OraqlAAPass(DecisionSequence(), cache_enabled=False)
        ctx = CompilationContext(m, oraql=p)
        PassManager(ctx).run(build_pipeline(3))
        verify_module(m)


class TestOverrideMode:
    def test_suppressing_chain_is_sound(self):
        cfg = BenchmarkConfig(name="o", sources=[SourceFile("t.c",
                                                            HAZARD_SRC)])
        rep = measure_chain_value(cfg)
        assert rep.no_alias_suppressed == 0
        assert rep.no_alias_normal > 0
        assert rep.instructions_suppressed >= rep.instructions_normal

    def test_partial_override_sequence(self):
        """Decision 1 defers to the chain; 0 forces may-alias."""
        cfg = BenchmarkConfig(name="o", sources=[SourceFile("t.c",
                                                            HAZARD_SRC)])
        ov = OraqlOverridePass(DecisionSequence([1] * 1000))
        prog = Compiler().compile(cfg, override=ov)
        assert ov.deferred_unique > 0
        assert ov.forced_unique == 0
        assert prog.no_alias_count > 0  # the chain still answered

    def test_override_stats(self):
        cfg = BenchmarkConfig(name="o", sources=[SourceFile("t.c",
                                                            HAZARD_SRC)])
        ov = OraqlOverridePass(DecisionSequence())
        prog = Compiler().compile(cfg, override=ov)
        assert ov.forced_unique > 0
        assert prog.no_alias_count == 0
        r = prog.run()
        assert r.ok  # pessimism never breaks the program
