"""IR-building and execution helpers shared by the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import (
    F64,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
    verify_module,
)
from repro.passes import CompilationContext, PassManager, build_pipeline
from repro.vm import Machine


def run_main(module, entry="main", max_steps=10_000_000, **kw):
    """Execute a module's entry point; assert clean completion."""
    m = Machine(module, max_steps=max_steps, **kw)
    m.start(entry)
    m.run_to_completion()
    assert m.state == "done", f"{m.state}: {m.error}"
    return m


def compile_and_run(source, opt_level=3, entry="main", filename="t.c",
                    verify_each=False, **kw):
    """MiniC -> IR -> pipeline -> run; returns (machine, ctx)."""
    module = compile_source(source, filename)
    verify_module(module)
    ctx = CompilationContext(module, verify_each=verify_each)
    PassManager(ctx).run(build_pipeline(opt_level))
    verify_module(module)
    return run_main(module, entry, **kw), ctx


def differential(source, entry="main", levels=(0, 1, 2, 3), **kw):
    """Assert identical stdout across optimization levels."""
    outputs = []
    for lvl in levels:
        module = compile_source(source, "t.c")
        ctx = CompilationContext(module)
        PassManager(ctx).run(build_pipeline(lvl))
        verify_module(module)
        m = run_main(module, entry, **kw)
        outputs.append(m.output())
    for lvl, out in zip(levels[1:], outputs[1:]):
        assert out == outputs[0], (
            f"O{lvl} output differs from O{levels[0]}:\n"
            f"{outputs[0]!r}\nvs\n{out!r}")
    return outputs[0]


def probe_logging_driver(config, strategy="chunked", **kwargs):
    """A :class:`~repro.oraql.driver.ProbingDriver` that records every
    probe it tests (the bit string handed to ``_test``), in order.

    The probe log is the strategy-parity currency: the goldens under
    ``tests/goldens/strategy_probes_*.txt`` were captured from the
    pre-refactor in-driver strategies, and the ported strategy objects
    must reproduce them probe for probe."""
    from repro.oraql.driver import ProbingDriver

    class _LoggingDriver(ProbingDriver):
        def __init__(self, *a, **kw):
            super().__init__(*a, **kw)
            self.probe_log = []

        def _test(self, sequence):
            self.probe_log.append(
                "".join(str(b) for b in sequence.bits) or "(empty)")
            return super()._test(sequence)

    return _LoggingDriver(config, strategy=strategy, **kwargs)


def render_probe_log(title, driver, report):
    """One golden section: every probe in order plus the totals."""
    lines = [f"== {title} =="]
    lines += [f"probe {p}" for p in driver.probe_log]
    pess = ", ".join(str(i) for i in report.pessimistic_indices)
    lines.append(f"pessimistic: {pess or '(none)'}")
    lines.append(f"tests: run={report.tests_run} "
                 f"cached={report.tests_cached} "
                 f"deduced={report.tests_deduced} "
                 f"compiles={report.compiles}")
    return "\n".join(lines)


def fuzz_probe_config(seed):
    """A probing config for a seeded hazard-mode fuzz program, with the
    O0 interpretation as the reference output (the oracle's setup)."""
    import dataclasses

    from repro.fuzz.generator import GeneratorOptions, generate_program
    from repro.fuzz.oracle import base_config
    from repro.oraql.compiler import Compiler

    program = generate_program(seed, GeneratorOptions(hazard=True))
    cfg = base_config(seed, program.source, 3)
    ref = Compiler().compile(
        dataclasses.replace(cfg, opt_level=0)).run()
    assert ref.ok, f"fuzz seed {seed} reference run failed"
    return dataclasses.replace(cfg, reference_outputs=[ref.stdout])


#: the (title, config factory) parity cases shared by the golden
#: capture and the parity tests — workloads with non-trivial bisection
#: plus a hazard-mode fuzz program
def parity_cases():
    import repro.workloads  # noqa: F401 — registers all variants
    from repro.workloads.base import get_config

    return [
        ("LULESH-seq", lambda: get_config("LULESH-seq")),
        ("MiniFE-openmp", lambda: get_config("MiniFE-openmp")),
        ("TestSNAP-openmp", lambda: get_config("TestSNAP-openmp")),
        ("fuzz-42", lambda: fuzz_probe_config(42)),
    ]


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def simple_fn(module):
    """A function double f(double* a, double* b, i64 n) with an entry
    block and a builder positioned in it."""
    fn = module.add_function(
        FunctionType(F64, [ptr(F64), ptr(F64), I64]), "f", ["a", "b", "n"])
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    return fn, b
