"""IR-building and execution helpers shared by the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import (
    F64,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
    verify_module,
)
from repro.passes import CompilationContext, PassManager, build_pipeline
from repro.vm import Machine


def run_main(module, entry="main", max_steps=10_000_000, **kw):
    """Execute a module's entry point; assert clean completion."""
    m = Machine(module, max_steps=max_steps, **kw)
    m.start(entry)
    m.run_to_completion()
    assert m.state == "done", f"{m.state}: {m.error}"
    return m


def compile_and_run(source, opt_level=3, entry="main", filename="t.c",
                    verify_each=False, **kw):
    """MiniC -> IR -> pipeline -> run; returns (machine, ctx)."""
    module = compile_source(source, filename)
    verify_module(module)
    ctx = CompilationContext(module, verify_each=verify_each)
    PassManager(ctx).run(build_pipeline(opt_level))
    verify_module(module)
    return run_main(module, entry, **kw), ctx


def differential(source, entry="main", levels=(0, 1, 2, 3), **kw):
    """Assert identical stdout across optimization levels."""
    outputs = []
    for lvl in levels:
        module = compile_source(source, "t.c")
        ctx = CompilationContext(module)
        PassManager(ctx).run(build_pipeline(lvl))
        verify_module(module)
        m = run_main(module, entry, **kw)
        outputs.append(m.output())
    for lvl, out in zip(levels[1:], outputs[1:]):
        assert out == outputs[0], (
            f"O{lvl} output differs from O{levels[0]}:\n"
            f"{outputs[0]!r}\nvs\n{out!r}")
    return outputs[0]


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def simple_fn(module):
    """A function double f(double* a, double* b, i64 n) with an entry
    block and a builder positioned in it."""
    fn = module.add_function(
        FunctionType(F64, [ptr(F64), ptr(F64), I64]), "f", ["a", "b", "n"])
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    return fn, b
