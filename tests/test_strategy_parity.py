"""Probe-for-probe parity of the ported strategies.

The chunked and frequency strategies were moved out of the driver into
``repro.oraql.strategies`` as pluggable objects.  The port must not
change a single probe: the goldens under
``tests/goldens/strategy_probes_*.txt`` were captured from the
*pre-refactor* in-driver search loops, and the strategy objects must
reproduce them bit for bit — same probe sequences in the same order,
same pessimistic sets, same test/cache/deduction/compile totals.

Regenerate with ``pytest --update-goldens`` (and justify the diff in
review: a changed probe log means the search behaviour changed).
"""

from helpers import parity_cases, probe_logging_driver, render_probe_log


def _capture(strategy):
    sections = []
    for title, make_config in parity_cases():
        driver = probe_logging_driver(make_config(), strategy=strategy)
        report = driver.run()
        assert not report.failed, f"{title}: {report.error}"
        sections.append(render_probe_log(f"{title} / {strategy}",
                                         driver, report))
    return "\n\n".join(sections) + "\n"


class TestPortParity:
    def test_chunked_probe_log_matches_pre_refactor(self, golden):
        golden("strategy_probes_chunked.txt", _capture("chunked"))

    def test_frequency_probe_log_matches_pre_refactor(self, golden):
        golden("strategy_probes_frequency.txt", _capture("frequency"))


class TestNewStrategyAgreement:
    """The new strategies need no goldens of their own, but they must
    land on the chunked answer (same pinned set, same final executable)
    on every parity case."""

    def test_prior_and_mcts_match_chunked(self):
        for title, make_config in parity_cases():
            chunked = probe_logging_driver(make_config(),
                                           strategy="chunked").run()
            for strategy in ("provenance-prior", "mcts"):
                rep = probe_logging_driver(make_config(),
                                           strategy=strategy).run()
                assert not rep.failed, f"{title}/{strategy}: {rep.error}"
                assert rep.pessimistic_indices == \
                    chunked.pessimistic_indices, (title, strategy)
                assert rep.final_exe_hash == chunked.final_exe_hash, (
                    title, strategy)
