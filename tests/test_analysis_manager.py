"""AnalysisManager / PreservedAnalyses semantics, fine-grained
invalidation, verification of preservation claims, and the coarse-mode
equivalence guarantees the refactor rests on."""

from __future__ import annotations

import pytest

from repro.analysis import ALL_AA_PASSES
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.instructions import BranchInst
from repro.passes import (
    AnalysisVerificationError,
    CompilationContext,
    DominatorTreeAnalysis,
    LoopAnalysis,
    MemorySSAAnalysis,
    ModulePass,
    Pass,
    PassManager,
    PreservedAnalyses,
    build_pipeline,
)

from helpers import run_main

LOOP_SRC = """
double acc[64];
int main() {
  for (int i = 0; i < 64; i = i + 1) acc[i] = i * 2;
  double s = 0.0;
  for (int i = 0; i < 64; i = i + 1) s = s + acc[i];
  printf("%f\n", s);
  return 0;
}
"""


def _ctx(src=LOOP_SRC, **kw):
    module = compile_source(src, "t.c")
    verify_module(module)
    return module, CompilationContext(module, **kw)


# -- PreservedAnalyses -------------------------------------------------------

class TestPreservedAnalyses:
    def test_all_preserves_everything(self):
        pa = PreservedAnalyses.all()
        assert pa.are_all_preserved()
        assert pa.preserves(DominatorTreeAnalysis)
        assert pa.preserves(MemorySSAAnalysis)

    def test_none_preserves_nothing(self):
        pa = PreservedAnalyses.none()
        assert not pa.are_all_preserved()
        assert not pa.preserves(DominatorTreeAnalysis)
        assert not pa.preserves(LoopAnalysis)

    def test_cfg_preserves_dt_li_but_not_mssa(self):
        pa = PreservedAnalyses.cfg()
        assert not pa.are_all_preserved()
        assert pa.preserves(DominatorTreeAnalysis)
        assert pa.preserves(LoopAnalysis)
        assert not pa.preserves(MemorySSAAnalysis)

    def test_from_changed_bridge(self):
        assert PreservedAnalyses.from_changed(False).are_all_preserved()
        assert PreservedAnalyses.from_changed(
            True, preserves_cfg=True).preserves(DominatorTreeAnalysis)
        assert not PreservedAnalyses.from_changed(True).preserves(
            DominatorTreeAnalysis)

    def test_no_truth_value(self):
        # the boolean 'changed' protocol is gone; any stale truthiness
        # test must fail loudly instead of silently misbehaving
        with pytest.raises(TypeError):
            bool(PreservedAnalyses.all())
        with pytest.raises(TypeError):
            if PreservedAnalyses.none():  # pragma: no cover
                pass

    def test_intersect(self):
        both = PreservedAnalyses.all().intersect(PreservedAnalyses.cfg())
        assert both.preserves(DominatorTreeAnalysis)
        assert not both.preserves(MemorySSAAnalysis)
        nothing = PreservedAnalyses.cfg().intersect(PreservedAnalyses.none())
        assert not nothing.preserves(DominatorTreeAnalysis)
        assert PreservedAnalyses.all().intersect(
            PreservedAnalyses.all()).are_all_preserved()

    def test_intersect_merges_modified_functions(self):
        a = PreservedAnalyses.none(modified_functions={"f"})
        b = PreservedAnalyses.none(modified_functions={"g"})
        assert a.intersect(b).modified_functions == {"f", "g"}
        # unknown extent on a non-all() side poisons the merge
        c = PreservedAnalyses.none()
        assert a.intersect(c).modified_functions is None


# -- caching and invalidation ------------------------------------------------

class TestAnalysisManagerCaching:
    def test_get_caches_and_counts(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        dt1 = ctx.am.get(DominatorTreeAnalysis, fn)
        dt2 = ctx.am.get(DominatorTreeAnalysis, fn)
        assert dt1 is dt2
        assert ctx.am.builds["DominatorTree"] == 1
        assert ctx.am.cache_hits["DominatorTree"] == 1

    def test_cached_never_builds(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is None
        ctx.am.get(DominatorTreeAnalysis, fn)
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is not None

    def test_cfg_preservation_keeps_dt_li_drops_mssa(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        dt = ctx.am.get(DominatorTreeAnalysis, fn)
        li = ctx.am.get(LoopAnalysis, fn)
        mssa = ctx.am.get(MemorySSAAnalysis, fn)
        ctx.am.invalidate_function(fn, PreservedAnalyses.cfg())
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is dt
        assert ctx.am.cached(LoopAnalysis, fn) is li
        assert ctx.am.cached(MemorySSAAnalysis, fn) is None
        # a hit on a survivor counts as an avoided rebuild
        ctx.am.get(DominatorTreeAnalysis, fn)
        assert ctx.am.preserved_hits["DominatorTree"] == 1

    def test_none_drops_everything_for_fn(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        ctx.am.get(DominatorTreeAnalysis, fn)
        ctx.am.invalidate_function(fn, PreservedAnalyses.none())
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is None

    def test_all_preserved_is_a_noop(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        ctx.am.get(DominatorTreeAnalysis, fn)
        epoch = ctx.am.epoch
        ctx.am.invalidate_function(fn, PreservedAnalyses.all())
        assert ctx.am.epoch == epoch
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is not None

    def test_coarse_mode_ignores_preservation(self):
        module, ctx = _ctx(invalidation="coarse")
        fn = next(iter(module.defined_functions()))
        ctx.am.get(DominatorTreeAnalysis, fn)
        ctx.am.invalidate_function(fn, PreservedAnalyses.cfg())
        assert ctx.am.cached(DominatorTreeAnalysis, fn) is None

    def test_invalid_mode_rejected(self):
        module = compile_source(LOOP_SRC, "t.c")
        with pytest.raises(ValueError):
            CompilationContext(module, invalidation="eager")


MULTI_FN_SRC = """
int g(int x) { return x + 1; }
int h(int x) { return x * 2; }
int main() { printf("%d\n", g(3) + h(4)); return 0; }
"""


class TestModuleScopedInvalidation:
    def test_modified_functions_scopes_invalidation(self):
        module, ctx = _ctx(MULTI_FN_SRC)
        fns = {f.name: f for f in module.defined_functions()}
        dt_g = ctx.am.get(DominatorTreeAnalysis, fns["g"])
        dt_h = ctx.am.get(DominatorTreeAnalysis, fns["h"])
        ctx.am.invalidate_module(
            PreservedAnalyses.none(modified_functions={fns["g"]}))
        assert ctx.am.cached(DominatorTreeAnalysis, fns["g"]) is None
        assert ctx.am.cached(DominatorTreeAnalysis, fns["h"]) is dt_h

    def test_unknown_extent_invalidates_all(self):
        module, ctx = _ctx(MULTI_FN_SRC)
        fns = {f.name: f for f in module.defined_functions()}
        ctx.am.get(DominatorTreeAnalysis, fns["g"])
        ctx.am.get(DominatorTreeAnalysis, fns["h"])
        ctx.am.invalidate_module(PreservedAnalyses.none())
        assert ctx.am.cached(DominatorTreeAnalysis, fns["g"]) is None
        assert ctx.am.cached(DominatorTreeAnalysis, fns["h"]) is None


# -- AA chain construction and invalidation scopes ---------------------------

class TestAAChain:
    def test_requires_module_dispatch(self):
        module, ctx = _ctx()
        globals_aa = next(a for a in ctx.aa.analyses
                          if a.name == "globals-aa")
        assert globals_aa.module is module

    def test_constructor_typeerror_not_swallowed(self):
        """The old ``try: cls(module) except TypeError: cls()`` probe
        swallowed TypeErrors raised *inside* constructors; the explicit
        ``requires_module`` dispatch must propagate them."""
        class BrokenAA:
            name = "broken-aa"
            requires_module = True

            def __init__(self, module):
                raise TypeError("genuine constructor bug")

        ALL_AA_PASSES["broken-aa"] = BrokenAA
        try:
            module = compile_source(LOOP_SRC, "t.c")
            with pytest.raises(TypeError, match="genuine constructor bug"):
                CompilationContext(module, aa_chain=("broken-aa",))
        finally:
            del ALL_AA_PASSES["broken-aa"]

    def test_function_scope_invalidation_is_per_function(self):
        module, ctx = _ctx(MULTI_FN_SRC, aa_chain=(
            "basic-aa", "cfl-steens-aa", "globals-aa"))
        fns = {f.name: f for f in module.defined_functions()}
        steens = next(a for a in ctx.aa.analyses
                      if a.name == "cfl-steens-aa")
        steens._summary(fns["g"])
        steens._summary(fns["h"])
        ctx.am.invalidate_function(fns["g"], PreservedAnalyses.cfg())
        assert fns["g"].id not in steens._summaries
        assert fns["h"].id in steens._summaries

    def test_globals_aa_survives_function_change_fine(self):
        module, ctx = _ctx()
        fn = next(iter(module.defined_functions()))
        globals_aa = next(a for a in ctx.aa.analyses
                          if a.name == "globals-aa")
        globals_aa._cache[12345] = True
        ctx.am.invalidate_function(fn, PreservedAnalyses.cfg())
        assert globals_aa._cache  # module analyses survive function passes

    def test_globals_aa_dropped_under_coarse(self):
        module, ctx = _ctx(invalidation="coarse")
        fn = next(iter(module.defined_functions()))
        globals_aa = next(a for a in ctx.aa.analyses
                          if a.name == "globals-aa")
        globals_aa._cache[12345] = True
        ctx.am.invalidate_function(fn, PreservedAnalyses.cfg())
        assert not globals_aa._cache

    def test_invalidate_interprocedural_drops_module_scope_only(self):
        module, ctx = _ctx(MULTI_FN_SRC, aa_chain=(
            "basic-aa", "cfl-steens-aa", "globals-aa"))
        fns = {f.name: f for f in module.defined_functions()}
        steens = next(a for a in ctx.aa.analyses
                      if a.name == "cfl-steens-aa")
        globals_aa = next(a for a in ctx.aa.analyses
                          if a.name == "globals-aa")
        steens._summary(fns["h"])
        globals_aa._cache[12345] = True
        ctx.am.invalidate_interprocedural()
        assert not globals_aa._cache
        assert fns["h"].id in steens._summaries


# -- verify_analyses: catching passes that lie -------------------------------

class LyingPass(Pass):
    """Folds away a conditional branch (a CFG change) but claims the
    CFG analyses survived."""

    name = "lying"
    display_name = "Lying Pass"

    def run_on_function(self, fn, ctx):
        for bb in fn.blocks:
            term = bb.terminator
            if isinstance(term, BranchInst) and term.is_conditional:
                keep = term.targets[0]
                drop = term.targets[1]
                if drop is not keep:
                    for phi in drop.phis():
                        phi.remove_incoming(bb)
                term.erase_from_parent()
                bb.append(BranchInst([keep]))
                return PreservedAnalyses.cfg()  # the lie
        return PreservedAnalyses.all()


class HonestPass(LyingPass):
    name = "honest"
    display_name = "Honest Pass"

    def run_on_function(self, fn, ctx):
        pa = super().run_on_function(fn, ctx)
        if pa.are_all_preserved():
            return pa
        return PreservedAnalyses.none()  # the truth


BRANCH_SRC = """
int main() {
  int x = 0;
  if (1) { x = 3; } else { x = 4; }
  printf("%d\n", x);
  return 0;
}
"""


class TestVerifyAnalyses:
    def _prime(self, ctx, module):
        # the lie is only detectable when a stale DT is actually cached
        for fn in module.defined_functions():
            ctx.am.get(DominatorTreeAnalysis, fn)
            ctx.am.get(LoopAnalysis, fn)

    def test_lying_pass_caught(self):
        module, ctx = _ctx(BRANCH_SRC, verify_analyses=True)
        self._prime(ctx, module)
        with pytest.raises(AnalysisVerificationError, match="Lying Pass"):
            PassManager(ctx).run([LyingPass()])

    def test_honest_pass_accepted(self):
        module, ctx = _ctx(BRANCH_SRC, verify_analyses=True)
        self._prime(ctx, module)
        PassManager(ctx).run([HonestPass()])

    def test_lie_undetected_without_flag(self):
        module, ctx = _ctx(BRANCH_SRC)
        self._prime(ctx, module)
        PassManager(ctx).run([LyingPass()])  # no error: mode is opt-in

    def test_full_pipeline_under_verification(self):
        # every stock pass must be honest about what it preserves
        module, ctx = _ctx(verify_analyses=True, verify_each=True)
        PassManager(ctx).run(build_pipeline(3))
        verify_module(module)
        run_main(module)


# -- module passes ------------------------------------------------------------

class RenamingModulePass(ModulePass):
    """Touches exactly one function and says so."""

    name = "touch-one"
    display_name = "Touch One Function"

    def __init__(self, target_name):
        self.target_name = target_name

    def run_on_module(self, module, ctx):
        for fn in module.defined_functions():
            if fn.name == self.target_name:
                # reuse the lying-pass CFG mutation as "a change"
                pa = HonestPass().run_on_function(fn, ctx)
                if not pa.are_all_preserved():
                    return PreservedAnalyses.none(modified_functions={fn})
        return PreservedAnalyses.all()


MODULE_SRC = """
int pick(int c) {
  int x = 0;
  if (c) { x = 3; } else { x = 4; }
  return x;
}
int other(int x) { return x + 1; }
int main() { printf("%d\n", pick(1) + other(2)); return 0; }
"""


class TestModulePasses:
    def test_verify_each_scopes_to_modified_functions(self):
        module, ctx = _ctx(MODULE_SRC, verify_each=True)
        fns = {f.name: f for f in module.defined_functions()}
        dt_other = ctx.am.get(DominatorTreeAnalysis, fns["other"])
        PassManager(ctx).run([RenamingModulePass("pick")])
        # untouched function keeps its analyses (and was not re-verified
        # against a stale tree)
        assert ctx.am.cached(DominatorTreeAnalysis, fns["other"]) is dt_other
        assert ctx.am.cached(DominatorTreeAnalysis, fns["pick"]) is None

    def test_unchanged_module_pass_keeps_everything(self):
        module, ctx = _ctx(MODULE_SRC)
        fns = {f.name: f for f in module.defined_functions()}
        dt = ctx.am.get(DominatorTreeAnalysis, fns["main"])
        PassManager(ctx).run([RenamingModulePass("no-such-function")])
        assert ctx.am.cached(DominatorTreeAnalysis, fns["main"]) is dt


# -- fine vs coarse equivalence ----------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("opt_level", [2, 3])
    def test_fine_and_coarse_produce_identical_ir(self, opt_level):
        from repro.ir import module_hash

        outs = {}
        for mode in ("fine", "coarse"):
            module = compile_source(LOOP_SRC, "t.c")
            ctx = CompilationContext(module, invalidation=mode)
            PassManager(ctx).run(build_pipeline(opt_level))
            verify_module(module)
            m = run_main(module)
            outs[mode] = (module_hash(module), m.output(),
                          ctx.aa.total_queries, ctx.aa.no_alias_count)
        assert outs["fine"] == outs["coarse"]

    def test_all_workloads_fine_vs_coarse(self):
        """Every bundled configuration compiles to a bit-identical
        executable with an identical AA query stream under both
        invalidation modes, and the ORAQL pass sees the same unique
        query sequence."""
        import repro.workloads  # noqa: F401 — registers all variants
        from repro.oraql.compiler import Compiler
        from repro.workloads.base import get_config, row_names

        for row in row_names():
            seen = {}
            for mode in ("fine", "coarse"):
                cfg = get_config(row)
                prog = Compiler(invalidation=mode).compile(
                    cfg, oraql_enabled=True)
                seen[mode] = (
                    prog.exe_hash,
                    prog.ctx.aa.total_queries,
                    prog.no_alias_count,
                    [(rec.index, rec.optimistic, rec.cached, rec.scope,
                      rec.issuing_pass, rec.a.ptr.name, rec.b.ptr.name)
                     for rec in prog.oraql.records],
                )
            assert seen["fine"] == seen["coarse"], row

    def test_fine_avoids_rebuilds(self):
        builds = {}
        for mode in ("fine", "coarse"):
            module = compile_source(LOOP_SRC, "t.c")
            ctx = CompilationContext(module, invalidation=mode)
            PassManager(ctx).run(build_pipeline(3))
            builds[mode] = dict(ctx.am.builds)
        assert builds["fine"]["DominatorTree"] < \
            builds["coarse"]["DominatorTree"]
        assert builds["fine"]["LoopInfo"] <= builds["coarse"]["LoopInfo"]
        # MemorySSA is never preserved: its schedule must be identical,
        # or the ORAQL query stream would change
        assert builds["fine"].get("MemorySSA") == \
            builds["coarse"].get("MemorySSA")
