"""Chaos tests for the probing service: killed workers, killed
servers, and the resume paths that make both invisible in the reports.
"""

import asyncio
import os
import subprocess
import sys
import time


from repro.oraql.driver import ProbingDriver
from repro.service import ProbingService, ServiceClient
from repro.workloads.base import get_config

_SEQUENTIAL = {}


def sequential_reference(name):
    if name not in _SEQUENTIAL:
        _SEQUENTIAL[name] = ProbingDriver(get_config(name)).run()
    return _SEQUENTIAL[name]


def assert_matches_sequential(report_dict, name):
    ref = sequential_reference(name)
    assert report_dict["pessimistic_indices"] == ref.pessimistic_indices
    assert report_dict["final_exe_hash"] == ref.final_exe_hash


#: kills the worker at its first probe on the first attempt only — the
#: requeued attempt (attempt 1) sails through, resuming the journal
KILL_FIRST_ATTEMPT = [{"kind": "worker-kill", "at": 0, "attempt": 0}]


class TestWorkerKill:
    def test_requeued_job_bit_identical(self, tmp_path):
        sock = str(tmp_path / "s.sock")

        async def main():
            svc = ProbingService(str(tmp_path / "state"), jobs=2,
                                 socket_path=sock)
            await svc.start()
            try:
                async with ServiceClient(socket_path=sock) as c:
                    job_id = await c.submit(
                        workload="TestSNAP-seq",
                        fault_plan=KILL_FIRST_ATTEMPT)
                    result = await c.wait(job_id)
                    status = await c.status(job_id)
            finally:
                await svc.close()
            return svc, result, status

        svc, result, status = asyncio.run(main())
        assert result["status"] == "done"
        assert status["attempts"] == 1          # one requeue happened
        assert status["worker_errors"]          # and was recorded
        assert svc.scheduler.pool_respawns >= 1  # pool was replaced
        assert_matches_sequential(result["report"], "TestSNAP-seq")
        # the survived fault is surfaced in the report, like the
        # parallel engine's worker_errors
        assert result["report"]["worker_errors"]

    def test_bystander_jobs_survive_the_kill(self, tmp_path):
        # a broken pool aborts every in-flight future; the innocent
        # job must be requeued+resumed too, not failed
        sock = str(tmp_path / "s.sock")

        async def main():
            svc = ProbingService(str(tmp_path / "state"), jobs=2,
                                 socket_path=sock)
            await svc.start()
            try:
                async with ServiceClient(socket_path=sock) as c:
                    doomed = await c.submit(
                        workload="TestSNAP-seq",
                        fault_plan=KILL_FIRST_ATTEMPT)
                    bystander = await c.submit(workload="MiniGMG-sse")
                    return (await c.wait(doomed),
                            await c.wait(bystander))
            finally:
                await svc.close()

        doomed, bystander = asyncio.run(main())
        assert doomed["status"] == "done"
        assert bystander["status"] == "done"
        assert_matches_sequential(doomed["report"], "TestSNAP-seq")
        assert_matches_sequential(bystander["report"], "MiniGMG-sse")

    def test_retry_exhaustion_fails_cleanly(self, tmp_path):
        # killed on every attempt -> a failed *report*, not a hung or
        # crashed server
        sock = str(tmp_path / "s.sock")
        relentless = [{"kind": "worker-kill", "at": 0, "attempt": a}
                      for a in range(6)]

        async def main():
            svc = ProbingService(str(tmp_path / "state"), jobs=1,
                                 socket_path=sock)
            await svc.start()
            try:
                async with ServiceClient(socket_path=sock) as c:
                    job_id = await c.submit(workload="MiniGMG-sse",
                                            fault_plan=relentless)
                    result = await c.wait(job_id)
                    # the server is still alive and serving
                    ok = await c.submit(workload="MiniGMG-sse")
                    return result, await c.wait(ok)
            finally:
                await svc.close()

        failed, ok = asyncio.run(main())
        assert failed["status"] == "failed"
        assert "worker lost" in failed["error"]
        assert ok["status"] == "done"


def wait_for_socket(path, proc, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"server died on startup: {proc.stderr.read()}")
        time.sleep(0.05)
    raise AssertionError("server socket never appeared")


def spawn_server(state_dir, sock, resume=False, jobs=2):
    cmd = [sys.executable, "-m", "repro.service", "--socket", sock,
           "--jobs", str(jobs), "--state-dir", state_dir]
    if resume:
        cmd.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                     "src")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    wait_for_socket(sock, proc)
    return proc


class TestServerKillResume:
    def test_sigkilled_server_resumes_bit_identically(self, tmp_path):
        state = str(tmp_path / "state")
        sock1 = str(tmp_path / "s1.sock")
        server = spawn_server(state, sock1)
        try:
            async def phase1():
                async with ServiceClient(socket_path=sock1) as c:
                    # one job allowed to finish, one caught mid-flight
                    done_id = await c.submit(workload="MiniGMG-sse")
                    await c.wait(done_id)
                    slow_id = await c.submit(workload="TestSNAP-openmp")
                    # let the slow job get properly underway
                    while (await c.status(slow_id))["status"] != \
                            "running":
                        await asyncio.sleep(0.02)
                    await asyncio.sleep(0.5)
                    return done_id, slow_id

            done_id, slow_id = asyncio.run(phase1())
        finally:
            server.kill()   # SIGKILL: no cleanup, no goodbye
            server.wait()

        sock2 = str(tmp_path / "s2.sock")
        server2 = spawn_server(state, sock2, resume=True)
        try:
            async def phase2():
                async with ServiceClient(socket_path=sock2) as c:
                    return (await c.wait(done_id),
                            await c.wait(slow_id))

            done_result, slow_result = asyncio.run(phase2())
        finally:
            server2.kill()
            server2.wait()

        # the finished job is served from the replayed table
        assert done_result["status"] == "done"
        assert_matches_sequential(done_result["report"], "MiniGMG-sse")
        # the interrupted job was resubmitted, resumed its journal, and
        # reports exactly what an uninterrupted run would have
        assert slow_result["status"] == "done"
        assert_matches_sequential(slow_result["report"],
                                  "TestSNAP-openmp")

    def test_resume_empty_state_is_fine(self, tmp_path):
        state = str(tmp_path / "state")
        sock = str(tmp_path / "s.sock")
        server = spawn_server(state, sock, resume=True)  # nothing there
        try:
            async def main():
                async with ServiceClient(socket_path=sock) as c:
                    job_id = await c.submit(workload="MiniGMG-sse")
                    return await c.wait(job_id)

            result = asyncio.run(main())
        finally:
            server.kill()
            server.wait()
        assert result["status"] == "done"
