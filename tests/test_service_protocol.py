"""Unit tests for the service's wire protocol, quotas, job table, and
report serialization — the fast, server-free layer."""

import threading

import pytest

from repro.oraql.cache import VerdictCache, config_fingerprint
from repro.oraql.driver import ProbingDriver
from repro.service import protocol as wire
from repro.service.jobs import (JobSpec, JobTable, report_from_dict,
                                report_to_dict)
from repro.service.quota import (QuotaExceeded, QuotaRegistry, TenantQuota,
                                 parse_tenant_spec)
from repro.trace.stream import EventTail, JsonlStreamingTrace, read_stream
from repro.workloads.base import get_config


class TestWireProtocol:
    def test_roundtrip(self):
        msg = wire.hello_msg("team-a")
        assert wire.decode(wire.encode(msg)) == msg

    def test_encode_is_one_line(self):
        line = wire.encode(wire.result_msg("job-1", "done",
                                           report={"a": "b\nc"}))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1  # embedded newlines stay escaped

    def test_decode_garbage_raises(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode(b"not json at all\n")

    def test_decode_non_object_raises(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode(b"[1, 2, 3]\n")

    def test_decode_missing_type_raises(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode(b'{"tenant": "x"}\n')

    def test_error_codes_are_closed(self):
        with pytest.raises(AssertionError):
            wire.error_msg("made-up-code", "nope")


class TestTenantQuota:
    def test_unrestricted_default(self):
        q = TenantQuota()
        q.admit(10_000)  # no limit, no raise
        assert q.clamp_fuel(None) is None
        assert q.clamp_max_tests(999) == 999

    def test_admission_refusal(self):
        q = TenantQuota("t", max_active=2)
        q.admit(1)
        with pytest.raises(QuotaExceeded):
            q.admit(2)

    def test_clamps_cap_but_never_raise(self):
        q = TenantQuota("t", fuel=100, wall_clock=1.5, max_tests=10)
        assert q.clamp_fuel(None) == 100
        assert q.clamp_fuel(50) == 50
        assert q.clamp_fuel(500) == 100
        assert q.clamp_wall_clock(9.0) == 1.5
        assert q.clamp_max_tests(5) == 5
        assert q.clamp_max_tests(50) == 10

    def test_parse_spec(self):
        q = parse_tenant_spec("team-a:max_active=2,fuel=1000,wall_clock=2.5")
        assert (q.name, q.max_active, q.fuel, q.wall_clock) == \
            ("team-a", 2, 1000, 2.5)

    def test_parse_bare_name(self):
        q = parse_tenant_spec("solo")
        assert q.name == "solo" and q.max_active is None

    @pytest.mark.parametrize("bad", [
        ":max_active=1",          # empty name
        "t:bogus_field=1",        # unknown field
        "t:max_active",           # no '='
        "t:max_active=lots",      # unparseable value
    ])
    def test_parse_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_tenant_spec(bad)

    def test_registry_default_fallback(self):
        reg = QuotaRegistry.from_specs(["team-a:max_active=1"])
        assert reg.get("team-a").max_active == 1
        assert reg.get("stranger").max_active is None  # unrestricted

    def test_registry_locked_down_default(self):
        reg = QuotaRegistry(default_quota=TenantQuota("default",
                                                      max_active=0))
        with pytest.raises(QuotaExceeded):
            reg.get("anonymous").admit(0)


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(id="job-1", config_json='{"name": "x"}',
                       tenant="t", strategy="frequency", stream=True,
                       fault_plan=[{"kind": "worker-kill", "at": 0}])
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(id="j", config_json="{}", kind="mystery")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="chunked"):
            JobSpec(id="j", config_json="{}", strategy="bogus")

    def test_every_registered_strategy_accepted(self):
        from repro.oraql.strategies import strategy_names
        for name in strategy_names():
            assert JobSpec(id="j", config_json="{}",
                           strategy=name).strategy == name

    def test_from_dict_ignores_unknown_keys(self):
        spec = JobSpec.from_dict({"id": "j", "config_json": "{}",
                                  "from_the_future": 1})
        assert spec.id == "j"

    def test_config_name(self):
        assert JobSpec(id="j",
                       config_json='{"name": "lulesh"}').config_name \
            == "lulesh"
        assert JobSpec(id="j", config_json="garbage").config_name == "?"


class TestJobTable:
    def test_admit_finish_resume(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        table = JobTable(path)
        table.admit(JobSpec(id="job-1", config_json="{}"))
        table.admit(JobSpec(id="job-2", config_json="{}"))
        table.finish("job-1", "done", report={"pessimistic_indices": []})

        resumed = JobTable(path, resume=True)
        assert resumed.get("job-1").status == "done"
        assert resumed.get("job-1").report == {"pessimistic_indices": []}
        assert [j.spec.id for j in resumed.unfinished()] == ["job-2"]
        assert resumed.replayed_done == ["job-1"]

    def test_duplicate_admit_raises(self, tmp_path):
        table = JobTable(str(tmp_path / "jobs.jsonl"))
        table.admit(JobSpec(id="job-1", config_json="{}"))
        with pytest.raises(ValueError):
            table.admit(JobSpec(id="job-1", config_json="{}"))

    def test_torn_tail_skipped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        table = JobTable(path)
        table.admit(JobSpec(id="job-1", config_json="{}"))
        table.admit(JobSpec(id="job-2", config_json="{}"))
        with open(path, "r+b") as f:  # tear the final record mid-line
            f.truncate(f.seek(0, 2) - 5)
        resumed = JobTable(path, resume=True)
        assert resumed.get("job-1") is not None
        assert resumed.get("job-2") is None
        assert resumed.corrupt_records == 1

    def test_next_job_number_survives_resume(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        table = JobTable(path)
        table.admit(JobSpec(id="job-7", config_json="{}"))
        table.admit(JobSpec(id="my-custom-id", config_json="{}"))
        assert JobTable(path, resume=True).next_job_number() == 8

    def test_fresh_table_truncates(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        JobTable(path).admit(JobSpec(id="job-1", config_json="{}"))
        assert len(JobTable(path, resume=False)) == 0


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        return ProbingDriver(get_config("MiniGMG-sse")).run() \
            .detach_for_transport()

    def test_roundtrip_preserves_identity_fields(self, report):
        again = report_from_dict(report_to_dict(report))
        assert again.pessimistic_indices == report.pessimistic_indices
        assert again.final_exe_hash == report.final_exe_hash
        assert again.config_name == report.config_name
        assert list(again.final_sequence.bits) == \
            list(report.final_sequence.bits)
        assert again.opt_unique == report.opt_unique
        assert again.tests_run == report.tests_run

    def test_dict_is_json_clean(self, report):
        import json
        json.dumps(report_to_dict(report))  # no live objects leaked

    def test_final_exe_hash_populated(self, report):
        assert isinstance(report.final_exe_hash, str)
        assert len(report.final_exe_hash) > 0

    def test_unknown_keys_ignored(self, report):
        d = report_to_dict(report)
        d["field_from_v2"] = {"x": 1}
        assert report_from_dict(d).pessimistic_indices == \
            report.pessimistic_indices


class TestCacheSharding:
    def test_shard_for_layout(self, tmp_path):
        cfg = get_config("MiniGMG-sse")
        fp = config_fingerprint(cfg)
        shard = VerdictCache.shard_for(str(tmp_path), fp)
        shard.put(VerdictCache.key(fp, "deadbeef"), True)
        assert fp[:2] in shard.path and fp in shard.path

    def test_shards_are_disjoint(self, tmp_path):
        a = VerdictCache.shard_for(str(tmp_path), "aa11")
        b = VerdictCache.shard_for(str(tmp_path), "bb22")
        a.put("aa11:x", True)
        assert b.get("aa11:x") is None
        assert VerdictCache.shard_for(str(tmp_path), "aa11") \
            .get("aa11:x") is True


class TestCompactionUnderConcurrentReader:
    """Satellite: the documented compact()-vs-reader guarantee.

    ``compact()`` replaces the file atomically (write-temp + rename), so
    a reader holding the same path always observes either the complete
    old file or the complete new one — a key present before compaction
    is readable throughout.  This interleaves a polling reader with
    repeated compactions and asserts no lookup ever misses or tears.
    """

    def test_lookups_never_fail_during_compaction(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        keys = [f"fp:{i:04x}" for i in range(50)]
        for i, key in enumerate(keys):
            cache.put(key, i % 2 == 0)
            if i % 2 == 0:  # supersede half so compaction has work
                cache.put(key, True)

        misses, errors = [], []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    fresh = VerdictCache(str(tmp_path))
                    for i, key in enumerate(keys):
                        got = fresh.get(key)
                        want = True if i % 2 == 0 else False
                        if got != want:
                            misses.append((key, got))
                    fresh.refresh()
            except Exception as e:  # pragma: no cover - the regression
                errors.append(e)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for _ in range(25):
                cache.compact()
        finally:
            stop.set()
            t.join()
        assert errors == []
        assert misses == []


class TestEventStreaming:
    def test_stream_and_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        trace = JsonlStreamingTrace(path)
        tail = EventTail(path)
        trace.session("cfg", "chunked")
        assert [r["t"] for r in tail.poll()] == ["meta"]
        trace.begin_compile("baseline")
        trace.record_done([1, 2])
        assert [r["t"] for r in tail.poll()] == ["compile", "done"]
        assert tail.poll() == []  # nothing new

    def test_coarse_by_default(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        trace = JsonlStreamingTrace(path)
        trace.session("cfg", "chunked")
        trace._emit({"t": "q", "i": 0})  # a per-query record
        trace.record_done([])
        kinds = [r["t"] for r in read_stream(path)]
        assert kinds == ["meta", "done"]  # per-query spam filtered out

    def test_torn_line_buffered_until_complete(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as f:
            f.write('{"t": "meta"}\n{"t": "comp')
        tail = EventTail(path)
        assert [r["t"] for r in tail.poll()] == ["meta"]
        with open(path, "a") as f:
            f.write('ile"}\n')
        assert [r["t"] for r in tail.poll()] == ["compile"]

    def test_shrunk_file_rewinds(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        trace = JsonlStreamingTrace(path)
        trace.session("cfg", "chunked")
        trace.begin_compile("x")
        tail = EventTail(path)
        assert len(tail.poll()) == 2
        # a requeued attempt restarts the stream from scratch
        trace2 = JsonlStreamingTrace(path)
        trace2.session("cfg", "chunked")
        assert [r["t"] for r in tail.poll()] == ["meta"]
