"""Integration tests for the probing driver: full-optimistic shortcut,
both bisection strategies, executable-hash caching, deduction, and the
soundness-of-unsoundness failure-injection checks."""

import pytest

from repro.oraql import (
    BenchmarkConfig,
    Compiler,
    DecisionSequence,
    ProbingDriver,
    SourceFile,
    sequence_from_pessimistic_set,
)

SAFE_SRC = """
void combine(double* out, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { out[i] = a[i] * b[i]; }
}
int main() {
  double x[32]; double y[32]; double z[32];
  for (int i = 0; i < 32; i++) { x[i] = i; y[i] = 32.0 - i; z[i] = 0.0; }
  combine(z, x, y, 32);
  double s = 0.0;
  for (int i = 0; i < 32; i++) { s = s + z[i]; }
  printf("checksum = %.6f\\n", s);
  return 0;
}
"""

HAZARD_SRC = """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
void combine(double* out, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { out[i] = a[i] * b[i]; }
}
int main() {
  double buf[64];
  double x[32]; double y[32]; double z[32];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  for (int i = 0; i < 32; i++) { x[i] = i; y[i] = 32.0 - i; z[i] = 0.0; }
  combine(z, x, y, 32);
  scale_shift(buf + 1, buf, 60);   // dst/src genuinely overlap
  double s1 = 0.0; double s2 = 0.0;
  for (int i = 0; i < 32; i++) { s1 = s1 + z[i]; }
  for (int i = 0; i < 64; i++) { s2 = s2 + buf[i] * i; }
  printf("z = %.6f\\nbuf = %.6f\\n", s1, s2);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


class TestDriverBasics:
    def test_fully_optimistic_shortcut(self):
        rep = ProbingDriver(cfg_of(SAFE_SRC)).run()
        assert rep.fully_optimistic
        assert rep.pess_unique == 0
        assert rep.tests_run == 1       # only the empty-sequence attempt
        assert rep.opt_unique > 0
        assert rep.no_alias_oraql > rep.no_alias_original

    @pytest.mark.parametrize("strategy", ["chunked", "frequency"])
    def test_finds_dangerous_queries(self, strategy):
        rep = ProbingDriver(cfg_of(HAZARD_SRC), strategy=strategy).run()
        assert not rep.fully_optimistic
        assert rep.pess_unique >= 1
        assert rep.pessimistic_indices
        # the dangerous query lives in scale_shift
        scopes = {r.scope for r in rep.pessimistic_records}
        assert "scale_shift" in scopes
        # everything else stays optimistic
        assert rep.opt_unique >= 1

    def test_final_sequence_is_locally_maximal(self):
        """Flipping any pessimistic decision back to optimistic must
        break verification (local maximality, paper §IV-B)."""
        cfg = cfg_of(HAZARD_SRC)
        rep = ProbingDriver(cfg).run()
        compiler = Compiler()
        from repro.oraql import VerificationScript
        base = compiler.compile(cfg, oraql_enabled=False).run()
        verifier = VerificationScript([base.stdout])
        for idx in rep.pessimistic_indices:
            relaxed = set(rep.pessimistic_indices) - {idx}
            seq = sequence_from_pessimistic_set(
                relaxed, len(rep.final_sequence))
            prog = compiler.compile(cfg, sequence=seq, oraql_enabled=True)
            assert not verifier.check(prog.run()), (
                f"flipping query {idx} optimistic should break the tests")

    def test_exe_hash_cache_hits(self):
        """Sequences that only differ in irrelevant decisions compile to
        identical executables and reuse the recorded verdict."""
        drv = ProbingDriver(cfg_of(HAZARD_SRC))
        rep = drv.run()
        # probing long enough to revisit at least one identical binary
        assert rep.compiles == rep.tests_run + rep.tests_cached + 2

    def test_deduction_counted(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC), strategy="chunked").run()
        assert rep.tests_deduced >= 1

    def test_reports_query_origins(self):
        rep = ProbingDriver(cfg_of(SAFE_SRC)).run()
        assert sum(rep.unique_by_pass.values()) == rep.opt_unique
        assert all(n > 0 for n in rep.unique_by_pass.values())

    def test_report_counts_consistent(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC)).run()
        assert rep.pess_unique == len(rep.pessimistic_indices)
        assert len(rep.final_sequence) >= max(rep.pessimistic_indices) + 1

    def test_strategies_agree_on_verdict(self):
        r1 = ProbingDriver(cfg_of(HAZARD_SRC), strategy="chunked").run()
        r2 = ProbingDriver(cfg_of(HAZARD_SRC), strategy="frequency").run()
        assert r1.fully_optimistic == r2.fully_optimistic is False
        # both find locally-maximal sets; sizes should match here
        assert r1.pess_unique == r2.pess_unique


class TestFailureInjection:
    """Soundness-of-unsoundness: a wrong no-alias answer must be able to
    change program output through each transform channel."""

    def _breaks(self, src):
        cfg = cfg_of(src)
        compiler = Compiler()
        base = compiler.compile(cfg, oraql_enabled=False).run()
        assert base.ok, base.error
        opt = compiler.compile(cfg, sequence=DecisionSequence(),
                               oraql_enabled=True).run()
        return (not opt.ok) or (opt.stdout != base.stdout)

    def test_vectorizer_channel(self):
        src = """
        int main() {
          double x[32];
          for (int i = 0; i < 32; i++) { x[i] = 1.0 + i; }
          scale(x + 1, x, 24);
          double s = 0.0;
          for (int i = 0; i < 32; i++) { s = s + x[i] * i; }
          printf("%.6f\\n", s);
          return 0;
        }
        void scale(double* dst, double* src, int n) {
          for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
        }
        """
        assert self._breaks(src)

    def test_early_cse_channel(self):
        src = """
        void touch(double* a, double* b) {
          double before = a[0];
          b[0] = before * 2.0;
          double after = a[0];      // b aliases a: must reload
          a[1] = after - before;
        }
        int main() {
          double m[4];
          m[0] = 3.0; m[1] = 0.0;
          touch(m, m);
          printf("%.1f\\n", m[1]);
          return 0;
        }
        """
        assert self._breaks(src)

    def test_licm_channel(self):
        src = """
        void pump(double* cell, double* arr, int n) {
          for (int i = 0; i < n; i++) {
            arr[i] = cell[0] + i;     // cell points into arr
          }
        }
        int main() {
          double a[8];
          for (int i = 0; i < 8; i++) { a[i] = 1.0; }
          pump(a + 3, a, 8);
          double s = 0.0;
          for (int i = 0; i < 8; i++) { s = s + a[i] * (i + 1); }
          printf("%.2f\\n", s);
          return 0;
        }
        """
        assert self._breaks(src)

    def test_dse_channel(self):
        src = """
        void publish(double* out, double* probe) {
          out[0] = 111.0;
          probe[1] = probe[0] + out[0];  // reads out[0] via probe? no:
          out[0] = 222.0;                // but probe IS out here
        }
        int main() {
          double m[4];
          m[0] = 0.0; m[1] = 0.0;
          publish(m, m);
          printf("%.1f %.1f\\n", m[0], m[1]);
          return 0;
        }
        """
        assert self._breaks(src)

    def test_safe_program_does_not_break(self):
        assert not self._breaks(SAFE_SRC)


class TestDriverErrors:
    def test_broken_baseline_rejected(self):
        src = 'int main() { abort(); return 0; }'
        with pytest.raises(RuntimeError, match="baseline"):
            ProbingDriver(cfg_of(src)).run()

    def test_reference_mismatch_rejected(self):
        cfg = cfg_of(SAFE_SRC)
        cfg.reference_outputs = ["something else entirely\n"]
        with pytest.raises(RuntimeError, match="reference"):
            ProbingDriver(cfg).run()

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            ProbingDriver(cfg_of(SAFE_SRC), strategy="magic")
