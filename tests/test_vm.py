"""Tests for the VM: memory, arithmetic semantics, printf, runtime
shims (OpenMP/CUDA/MPI), traps, and accounting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.frontend import compile_source
from repro.ir import ArrayType, F32, F64, I8, I32, I64, Module, ptr
from repro.vm import (
    DeadlockError,
    Machine,
    Memory,
    MemoryTrap,
    MPIWorld,
    StepLimitExceeded,
    occupancy_factor,
)
from repro.vm.interpreter import _unsigned, _wrap_int

from helpers import run_main


class TestMemory:
    def test_scalar_roundtrip(self):
        mem = Memory()
        a = mem.allocate(8)
        mem.store(a, F64, 3.25)
        assert mem.load(a, F64) == 3.25
        mem.store(a, I64, -17)
        assert mem.load(a, I64) == -17

    def test_f32_rounding(self):
        mem = Memory()
        a = mem.allocate(4)
        mem.store(a, F32, 0.1)
        v = mem.load(a, F32)
        assert v != 0.1 and abs(v - 0.1) < 1e-7

    def test_char_and_strings(self):
        mem = Memory()
        a = mem.allocate(32)
        mem.write_cstring(a, "hello")
        assert mem.read_cstring(a) == "hello"

    def test_vector_roundtrip(self):
        from repro.ir import VectorType
        mem = Memory()
        a = mem.allocate(32)
        vt = VectorType(F64, 4)
        mem.store(a, vt, (1.0, 2.0, 3.0, 4.0))
        assert mem.load(a, vt) == (1.0, 2.0, 3.0, 4.0)

    def test_out_of_bounds_traps(self):
        mem = Memory()
        with pytest.raises(MemoryTrap):
            mem.load(0, I64)          # null
        with pytest.raises(MemoryTrap):
            mem.load(mem.brk + 4096, I64)

    def test_copy_and_fill(self):
        mem = Memory()
        a = mem.allocate(16)
        b = mem.allocate(16)
        mem.store(a, I64, 42)
        mem.copy(b, a, 8)
        assert mem.load(b, I64) == 42
        mem.fill(a, 0, 16)
        assert mem.load(a, I64) == 0


class TestArithmetic:
    @given(st.integers(-2**63, 2**63 - 1), st.integers(-2**63, 2**63 - 1))
    def test_add_wraps_like_i64(self, a, b):
        r = Machine._scalar_binop("add", a, b, I64)
        assert -(2**63) <= r < 2**63
        assert (r - (a + b)) % (2**64) == 0

    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    def test_sdiv_truncates_toward_zero(self, a, b):
        if b == 0:
            return
        r = Machine._scalar_binop("sdiv", a, b, I64)
        assert r == int(a / b)

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_srem_sign_follows_dividend(self, a, b):
        if b == 0:
            return
        r = Machine._scalar_binop("srem", a, b, I64)
        q = Machine._scalar_binop("sdiv", a, b, I64)
        assert q * b + r == a

    def test_division_by_zero_traps(self):
        from repro.vm import UndefinedBehavior
        with pytest.raises(UndefinedBehavior):
            Machine._scalar_binop("sdiv", 1, 0, I64)

    def test_fdiv_by_zero_is_inf(self):
        assert Machine._scalar_binop("fdiv", 1.0, 0.0, F64) == math.inf
        assert Machine._scalar_binop("fdiv", -1.0, 0.0, F64) == -math.inf

    @given(st.integers(-2**63, 2**63 - 1), st.integers(0, 63))
    def test_shifts(self, a, s):
        shl = Machine._scalar_binop("shl", a, s, I64)
        assert _wrap_int(a << s, 64) == shl
        lshr = Machine._scalar_binop("lshr", a, s, I64)
        assert lshr == _wrap_int(_unsigned(a, 64) >> s, 64)


class TestPrintf:
    def run_src(self, body):
        return run_main(compile_source(
            "int main() { %s return 0; }" % body)).output()

    def test_formats(self):
        out = self.run_src(
            r'printf("%d %5d %.3f %e %g %s %c %%\n", 42, 7, 3.14159, '
            r'1234.5, 0.5, "str", 88);')
        assert out == "42     7 3.142 1.234500e+03 0.5 str X %\n"

    def test_negative_and_unsigned(self):
        out = self.run_src(r'printf("%d %x\n", 0 - 5, 255);')
        assert out.startswith("-5 ff")


class TestOpenMP:
    SRC = """
    int main() {
      double a[100];
      #pragma omp parallel for
      for (int i = 0; i < 100; i++) { a[i] = i * 2.0; }
      double s = 0.0;
      for (int i = 0; i < 100; i++) { s = s + a[i]; }
      printf("%.1f\\n", s);
      return 0;
    }
    """

    def test_deterministic_across_thread_counts(self):
        outs = set()
        for t in (1, 2, 4, 7):
            m = run_main(compile_source(self.SRC), num_threads=t)
            outs.add(m.output())
        assert outs == {"9900.0\n"}

    def test_zero_trip_region(self):
        src = self.SRC.replace("i < 100", "i < 0").replace(
            'printf("%.1f\\n", s);', 'printf("ok\\n");')
        src = src.replace("s = s + a[i];", "s = 0.0;")
        m = run_main(compile_source(src))
        assert "ok" in m.output()


class TestCUDA:
    def test_kernel_grid_covers_range(self):
        src = """
        __global__ void fill(double* a, int n) {
          int t = cuda_thread_id();
          int total = cuda_num_threads();
          for (int i = t; i < n; i += total) { a[i] = i + 0.5; }
        }
        int main() {
          double* a = (double*)malloc(40 * sizeof(double));
          launch(fill, 2, 8, a, 40);
          printf("%.1f %.1f\\n", a[0], a[39]);
          return 0;
        }
        """
        m = run_main(compile_source(src))
        assert m.output() == "0.5 39.5\n"
        assert m.kernel_launches.get("fill") == 1
        assert m.kernel_cycles.get("fill", 0) > 0

    def test_occupancy_factor_monotone(self):
        vals = [occupancy_factor(r) for r in (8, 32, 48, 80, 120, 160, 240)]
        assert vals == sorted(vals)
        assert vals[0] == 1.0 and vals[-1] > 1.3


class TestMPI:
    SRC = """
    int main() {
      int rank = mpi_comm_rank();
      int size = mpi_comm_size();
      double v = 1.0 + rank;
      double s = mpi_allreduce_sum_f64(v);
      double m = mpi_allreduce_max_f64(v);
      mpi_barrier();
      if (rank == 0) {
        printf("sum=%.1f max=%.1f ranks=%d\\n", s, m, size);
      }
      return 0;
    }
    """

    def test_allreduce(self):
        mod = compile_source(self.SRC)
        machines = [Machine(mod) for _ in range(4)]
        for m in machines:
            m.start("main")
        MPIWorld(machines).run()
        assert all(m.state == "done" for m in machines)
        out = "".join(m.output() for m in machines)
        assert out == "sum=10.0 max=4.0 ranks=4\n"

    def test_single_rank_collectives_are_local(self):
        m = run_main(compile_source(self.SRC), nranks=1)
        assert m.output() == "sum=1.0 max=1.0 ranks=1\n"

    def test_mismatched_collectives_deadlock(self):
        src = """
        int main() {
          if (mpi_comm_rank() == 0) { mpi_barrier(); }
          else { double x = mpi_allreduce_sum_f64(1.0); }
          return 0;
        }
        """
        mod = compile_source(src)
        machines = [Machine(mod) for _ in range(2)]
        for m in machines:
            m.start("main")
        with pytest.raises(DeadlockError):
            MPIWorld(machines).run()


class TestFailureModes:
    def test_step_limit(self):
        src = "int main() { while (1 < 2) { } return 0; }"
        m = Machine(compile_source(src), max_steps=10_000)
        m.start("main")
        m.run_to_completion()
        assert m.state == "trapped"
        assert isinstance(m.error, StepLimitExceeded)

    def test_wild_pointer_traps(self):
        src = """
        int main() {
          double* p = (double*)0;
          p[0] = 1.0;
          return 0;
        }
        """
        m = Machine(compile_source(src))
        m.start("main")
        m.run_to_completion()
        assert m.state == "trapped"

    def test_abort_traps(self):
        src = 'int main() { abort(); return 0; }'
        m = Machine(compile_source(src))
        m.start("main")
        m.run_to_completion()
        assert m.state == "trapped"

    def test_instruction_and_cycle_accounting(self):
        src = """
        int main() {
          double s = 0.0;
          for (int i = 0; i < 10; i++) { s = s + i; }
          printf("%.0f\\n", s);
          return 0;
        }
        """
        m = run_main(compile_source(src))
        assert m.instructions > 50
        assert m.cycles > m.instructions * 0.5
