"""Tests for MemorySSA construction and the clobber walker."""

import pytest

from repro.analysis import (
    AliasResult,
    LiveOnEntry,
    MemoryDef,
    MemoryLocation,
    MemoryPhi,
    MemorySSA,
    MemoryUse,
    build_aa_chain,
)
from repro.ir import F64, FunctionType, I1, I64, IRBuilder, VOID, ptr
from repro.oraql import DecisionSequence, OraqlAAPass


def make_aa(fn, oraql=None):
    aa = build_aa_chain(oraql=oraql)
    aa.current_function = fn
    return aa


class TestConstruction:
    def test_defs_uses_linked(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        st = b.store(b.f64(1.0), fn.args[0])
        ld = b.load(fn.args[0])
        b.ret()
        mssa = MemorySSA(fn, make_aa(fn), optimize_uses=False)
        d = mssa.access_of[st]
        u = mssa.access_of[ld]
        assert isinstance(d, MemoryDef)
        assert isinstance(u, MemoryUse)
        assert u.defining is d
        assert isinstance(d.defining, LiveOnEntry)

    def test_phi_at_join(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64), I1]), "f")
        e, t, f, j = (fn.add_block(n) for n in "etfj")
        b = IRBuilder(e)
        b.cond_br(fn.args[1], t, f)
        b.position_at_end(t)
        b.store(b.f64(1.0), fn.args[0])
        b.br(j)
        b.position_at_end(f)
        b.br(j)
        b.position_at_end(j)
        ld = b.load(fn.args[0])
        b.ret()
        mssa = MemorySSA(fn, make_aa(fn), optimize_uses=False)
        u = mssa.access_of[ld]
        assert isinstance(u.defining, MemoryPhi)
        assert len(u.defining.incoming) == 2


class TestWalker:
    def test_clobbering_store_found(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        st = b.store(b.f64(1.0), fn.args[0])
        ld = b.load(fn.args[0])
        b.ret()
        mssa = MemorySSA(fn, make_aa(fn))
        clob = mssa.clobbering_access(ld)
        assert isinstance(clob, MemoryDef) and clob.inst is st

    def test_walker_skips_noalias_store(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        b.store(b.f64(2.0), x)          # cannot clobber the argument
        ld = b.load(fn.args[0])
        b.ret()
        mssa = MemorySSA(fn, make_aa(fn))
        assert isinstance(mssa.clobbering_access(ld), LiveOnEntry)

    def test_walker_consults_oraql(self, module):
        """A may-alias store between two arguments blocks the walk unless
        ORAQL answers optimistically."""
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), ptr(F64)]), "f", ["a", "b"])
        b = IRBuilder(fn.add_block("e"))
        st = b.store(b.f64(1.0), fn.args[1])
        ld = b.load(fn.args[0])
        b.ret()

        mssa = MemorySSA(fn, make_aa(fn))
        clob = mssa.clobbering_access(ld)
        assert isinstance(clob, MemoryDef) and clob.inst is st

        oraql = OraqlAAPass(DecisionSequence())  # all optimistic
        mssa2 = MemorySSA(fn, make_aa(fn, oraql))
        assert isinstance(mssa2.clobbering_access(ld), LiveOnEntry)
        assert oraql.opt_unique >= 1

    def test_loop_carried_clobber_is_conservative(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        pre, hdr, body, ex = (fn.add_block(n) for n in ("p", "h", "b", "x"))
        b = IRBuilder(pre)
        b.br(hdr)
        b.position_at_end(hdr)
        i = b.phi(I64)
        ld = b.load(fn.args[0])
        c = b.icmp("slt", i, b.i64(4))
        b.cond_br(c, body, ex)
        b.position_at_end(body)
        b.store(b.fadd(ld, b.f64(1.0)), fn.args[0])
        i2 = b.add(i, b.i64(1))
        b.br(hdr)
        i.add_incoming(b.i64(0), pre)
        i.add_incoming(i2, body)
        b.position_at_end(ex)
        b.ret()
        mssa = MemorySSA(fn, make_aa(fn))
        clob = mssa.clobbering_access(ld)
        # the load sees either the loop phi or the body store
        assert isinstance(clob, (MemoryPhi, MemoryDef))
        assert not isinstance(clob, LiveOnEntry)

    def test_use_optimization_attributes_queries(self, module):
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.store(b.f64(1.0), fn.args[1])
        b.load(fn.args[0])
        b.ret()
        aa = make_aa(fn)
        aa.current_pass = "Memory SSA"
        MemorySSA(fn, aa, optimize_uses=True)
        assert aa.queries_by_issuer.get("Memory SSA", 0) >= 1
