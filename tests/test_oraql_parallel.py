"""Tests for the parallel probing engine: the persistent verdict cache,
fan-out across configurations, speculative bisection, budget-graceful
degradation, and the compile-determinism invariant the shared cache
depends on."""

import os
import subprocess
import sys

import pytest

from repro.oraql import (
    BenchmarkConfig,
    Compiler,
    DecisionSequence,
    ParallelProbingDriver,
    ProbingDriver,
    SourceFile,
    VerdictCache,
    config_fingerprint,
)

HAZARD_SRC = """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
void combine(double* out, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { out[i] = a[i] * b[i]; }
}
int main() {
  double buf[64];
  double x[32]; double y[32]; double z[32];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  for (int i = 0; i < 32; i++) { x[i] = i; y[i] = 32.0 - i; z[i] = 0.0; }
  combine(z, x, y, 32);
  scale_shift(buf + 1, buf, 60);   // dst/src genuinely overlap
  double s1 = 0.0; double s2 = 0.0;
  for (int i = 0; i < 32; i++) { s1 = s1 + z[i]; }
  for (int i = 0; i < 64; i++) { s2 = s2 + buf[i] * i; }
  printf("z = %.6f\\nbuf = %.6f\\n", s1, s2);
  return 0;
}
"""

#: many incomparable pointer-pair queries inside one function plus a
#: genuine overlap late in main: forces a deep chunked binary search,
#: which is what the speculative branches accelerate
WIDE_HAZARD_SRC = """
void sweep(double* a, double* b, double* c, double* d, double* e,
           double* f, int n) {
  for (int i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
  for (int i = 0; i < n; i++) { c[i] = d[i] + a[i]; }
  for (int i = 0; i < n; i++) { e[i] = f[i] + c[i]; }
  for (int i = 0; i < n; i++) { b[i] = e[i] * 0.5; }
}
void shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double p[16]; double q[16]; double r[16];
  double s[16]; double t[16]; double u[16];
  double buf[64];
  for (int i = 0; i < 16; i++) {
    p[i] = i; q[i] = 2.0 * i; r[i] = 0.0;
    s[i] = 3.0 * i; t[i] = 0.0; u[i] = 1.0;
  }
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  sweep(p, q, r, s, t, u, 16);
  shift(buf + 1, buf, 60);         // the dangerous overlap
  double acc = 0.0;
  for (int i = 0; i < 16; i++) { acc = acc + p[i] + r[i] + t[i]; }
  for (int i = 0; i < 64; i++) { acc = acc + buf[i] * i; }
  printf("acc = %.6f\\n", acc);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


class TestVerdictCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        key = VerdictCache.key("fp", "hash1")
        assert cache.get(key) is None
        cache.put(key, True)
        assert cache.get(key) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_survives_restart(self, tmp_path):
        first = VerdictCache(str(tmp_path))
        first.put(VerdictCache.key("fp", "h1"), True)
        first.put(VerdictCache.key("fp", "h2"), False)
        reopened = VerdictCache(str(tmp_path))
        assert len(reopened) == 2
        assert reopened.get(VerdictCache.key("fp", "h1")) is True
        assert reopened.get(VerdictCache.key("fp", "h2")) is False

    def test_ignores_torn_and_foreign_lines(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put(VerdictCache.key("fp", "h1"), True)
        with open(cache.path, "a") as f:
            f.write('{"v": 999, "key": "other:h", "ok": true}\n')
            f.write("{torn line\n")
            f.write("\n")
        reopened = VerdictCache(str(tmp_path))
        assert len(reopened) == 1

    def test_refresh_sees_concurrent_appends(self, tmp_path):
        a = VerdictCache(str(tmp_path))
        b = VerdictCache(str(tmp_path))
        a.put(VerdictCache.key("fp", "h1"), True)
        assert b.get(VerdictCache.key("fp", "h1")) is None
        b.refresh()
        assert b.get(VerdictCache.key("fp", "h1")) is True

    def test_fingerprint_separates_configs(self):
        fa = config_fingerprint(cfg_of(HAZARD_SRC, "a"))
        fb = config_fingerprint(cfg_of(WIDE_HAZARD_SRC, "a"))
        fc = config_fingerprint(cfg_of(HAZARD_SRC, "a"))
        assert fa != fb
        assert fa == fc


class TestPersistentVerdicts:
    def test_warm_run_reuses_verdicts(self, tmp_path):
        cold = ProbingDriver(cfg_of(HAZARD_SRC),
                             verdict_cache=VerdictCache(str(tmp_path))).run()
        warm = ProbingDriver(cfg_of(HAZARD_SRC),
                             verdict_cache=VerdictCache(str(tmp_path))).run()
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert warm.cache_hits > 0
        assert warm.tests_run < cold.tests_run
        assert warm.pessimistic_indices == cold.pessimistic_indices

    def test_cache_shared_across_strategies(self, tmp_path):
        chunked = ProbingDriver(
            cfg_of(HAZARD_SRC), strategy="chunked",
            verdict_cache=VerdictCache(str(tmp_path))).run()
        freq = ProbingDriver(
            cfg_of(HAZARD_SRC), strategy="frequency",
            verdict_cache=VerdictCache(str(tmp_path))).run()
        # the strategies revisit some of the same executables
        assert freq.cache_hits > 0
        assert freq.pess_unique == chunked.pess_unique

    def test_uncached_driver_reports_no_traffic(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC)).run()
        assert rep.cache_hits == 0 and rep.cache_misses == 0


class TestBudgetGracefulDegradation:
    def test_exhausted_budget_returns_partial_report(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC), max_tests=2).run()
        assert rep.budget_exhausted
        assert rep.tests_run <= 2
        assert not rep.fully_optimistic
        assert isinstance(rep.pessimistic_indices, list)

    def test_zero_budget_still_returns(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC), max_tests=0).run()
        assert rep.budget_exhausted
        assert rep.tests_run == 0
        assert rep.pessimistic_indices == []

    def test_ample_budget_not_flagged(self):
        rep = ProbingDriver(cfg_of(HAZARD_SRC)).run()
        assert not rep.budget_exhausted

    @pytest.mark.parametrize("strategy", ["chunked", "frequency"])
    def test_partial_set_is_prefix_of_full_probing(self, strategy):
        full = ProbingDriver(cfg_of(WIDE_HAZARD_SRC),
                             strategy=strategy).run()
        part = ProbingDriver(cfg_of(WIDE_HAZARD_SRC), strategy=strategy,
                             max_tests=2).run()
        assert part.budget_exhausted
        # partial knowledge never invents dangerous queries the full
        # search would not find
        assert set(part.pessimistic_indices) <= set(full.pessimistic_indices)

    def test_summary_and_report_mention_budget(self):
        from repro.oraql import render_report
        rep = ProbingDriver(cfg_of(HAZARD_SRC), max_tests=1).run()
        assert "BUDGET EXHAUSTED" in rep.summary()
        assert "BUDGET EXHAUSTED" in render_report(rep)


class TestParallelDriver:
    def test_fanout_matches_sequential(self):
        sequential = [ProbingDriver(cfg_of(HAZARD_SRC, "a")).run(),
                      ProbingDriver(cfg_of(WIDE_HAZARD_SRC, "b")).run()]
        parallel = ParallelProbingDriver(
            [cfg_of(HAZARD_SRC, "a"), cfg_of(WIDE_HAZARD_SRC, "b")],
            jobs=2).run()
        assert [r.config_name for r in parallel] == ["a", "b"]
        for seq_rep, par_rep in zip(sequential, parallel):
            assert par_rep.pessimistic_indices == seq_rep.pessimistic_indices
            assert par_rep.fully_optimistic == seq_rep.fully_optimistic
            assert par_rep.opt_unique == seq_rep.opt_unique
            assert par_rep.pess_unique == seq_rep.pess_unique

    def test_speculative_matches_sequential(self):
        seq_rep = ProbingDriver(cfg_of(WIDE_HAZARD_SRC)).run()
        spec_rep = ParallelProbingDriver(cfg_of(WIDE_HAZARD_SRC),
                                         jobs=4).run()[0]
        assert spec_rep.pessimistic_indices == seq_rep.pessimistic_indices
        assert spec_rep.pess_unique == seq_rep.pess_unique
        assert spec_rep.opt_unique == seq_rep.opt_unique

    def test_speculation_actually_happens(self):
        spec_rep = ParallelProbingDriver(cfg_of(WIDE_HAZARD_SRC),
                                         jobs=4).run()[0]
        assert spec_rep.tests_speculated > 0

    def test_parallel_warm_cache(self, tmp_path):
        configs = [cfg_of(HAZARD_SRC, "a"), cfg_of(WIDE_HAZARD_SRC, "b")]
        cold = ParallelProbingDriver(configs, jobs=2,
                                     cache_dir=str(tmp_path)).run()
        warm = ParallelProbingDriver(configs, jobs=2,
                                     cache_dir=str(tmp_path)).run()
        for c, w in zip(cold, warm):
            assert w.cache_hits > 0
            assert w.tests_run < c.tests_run
            assert w.pessimistic_indices == c.pessimistic_indices

    def test_jobs_one_falls_back_to_sequential(self):
        rep = ParallelProbingDriver(cfg_of(HAZARD_SRC), jobs=1).run()[0]
        assert rep.tests_speculated == 0
        assert rep.pess_unique >= 1

    def test_rejects_empty_and_bad_inputs(self):
        with pytest.raises(ValueError):
            ParallelProbingDriver([])
        with pytest.raises(ValueError):
            ParallelProbingDriver(cfg_of(HAZARD_SRC), jobs=0)

    def test_detached_report_still_renders(self):
        from repro.oraql import render_report
        rep = ProbingDriver(cfg_of(HAZARD_SRC)).run()
        dump_before = render_report(rep)
        rep.detach_for_transport()
        assert rep.final_program is None
        assert rep.pessimistic_records == []
        assert render_report(rep) == dump_before


class TestCompileDeterminism:
    """Same config + same sequence ⇒ identical exe_hash — the invariant
    the shared verdict cache and the parallel engine both depend on."""

    SEQ = [1, 0, 1, 1, 0]

    def test_across_compiler_instances(self):
        hashes = set()
        for _ in range(2):
            prog = Compiler().compile(cfg_of(HAZARD_SRC),
                                      sequence=DecisionSequence(self.SEQ),
                                      oraql_enabled=True)
            hashes.add(prog.exe_hash)
        assert len(hashes) == 1

    def test_across_subprocesses(self):
        """Different interpreter processes (with different hash seeds)
        must agree on the hash, or cached verdicts would be unreachable
        after a restart."""
        snippet = (
            "from repro.oraql import (BenchmarkConfig, SourceFile, "
            "Compiler, DecisionSequence)\n"
            f"src = r'''{HAZARD_SRC}'''\n"
            "cfg = BenchmarkConfig(name='t', "
            "sources=[SourceFile('t.c', src)])\n"
            f"prog = Compiler().compile(cfg, "
            f"sequence=DecisionSequence({self.SEQ}), oraql_enabled=True)\n"
            "print(prog.exe_hash)\n"
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hashes = set()
        for seed in ("0", "1"):
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={**os.environ,
                     "PYTHONPATH": os.path.join(repo_root, "src"),
                     "PYTHONHASHSEED": seed})
            hashes.add(out.stdout.strip())
        assert len(hashes) == 1 and "" not in hashes
