"""In-process server tests: concurrent sessions, streaming, quotas,
and protocol-level error handling.

The load-bearing assertion everywhere: a job run by the service — no
matter how concurrent the fleet around it — reports the same
pessimistic set and final executable hash as a sequential
:class:`~repro.oraql.driver.ProbingDriver` run of the same workload.
"""

import asyncio
import json
import os

import pytest

from repro.oraql.driver import ProbingDriver
from repro.service import ProbingService, ServiceClient, ServiceError
from repro.workloads.base import get_config

# cheap rows (sub-second sequential probes) keep these tier-1
FAST_WORKLOADS = ["MiniGMG-sse", "MiniGMG-ompif", "MiniGMG-omptask",
                  "GridMini-offload"]

_SEQUENTIAL = {}


def sequential_reference(name):
    """The ground truth, computed once per test process."""
    if name not in _SEQUENTIAL:
        _SEQUENTIAL[name] = ProbingDriver(get_config(name)).run()
    return _SEQUENTIAL[name]


def assert_matches_sequential(report_dict, name):
    ref = sequential_reference(name)
    assert report_dict["pessimistic_indices"] == ref.pessimistic_indices
    assert report_dict["final_exe_hash"] == ref.final_exe_hash


@pytest.fixture
def service(tmp_path):
    """A started unix-socket service; the test gets (service, socket)."""
    sock = str(tmp_path / "oraql.sock")

    async def start(**kwargs):
        svc = ProbingService(str(tmp_path / "state"),
                             socket_path=sock, **kwargs)
        await svc.start()
        return svc

    return start, sock


def run(coro):
    return asyncio.run(coro)


class TestConcurrentSessions:
    def test_four_sessions_bit_identical(self, service):
        start, sock = service

        async def one_session(name):
            async with ServiceClient(socket_path=sock) as c:
                job_id = await c.submit(workload=name)
                return name, await c.wait(job_id)

        async def main():
            svc = await start(jobs=2)
            try:
                results = await asyncio.gather(
                    *(one_session(n) for n in FAST_WORKLOADS))
            finally:
                await svc.close()
            return results

        for name, result in run(main()):
            assert result["status"] == "done"
            assert_matches_sequential(result["report"], name)

    def test_same_workload_from_competing_tenants(self, service):
        # two tenants race the same config: the verdict-cache shard is
        # shared, the answers must not be
        start, sock = service

        async def session(tenant):
            async with ServiceClient(socket_path=sock,
                                     tenant=tenant) as c:
                job_id = await c.submit(workload="MiniGMG-sse")
                return await c.wait(job_id)

        async def main():
            svc = await start(jobs=2)
            try:
                return await asyncio.gather(session("team-a"),
                                            session("team-b"))
            finally:
                await svc.close()

        for result in run(main()):
            assert_matches_sequential(result["report"], "MiniGMG-sse")

    def test_one_connection_many_jobs(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=2)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    ids = [await c.submit(workload=n)
                           for n in FAST_WORKLOADS[:2]]
                    return [await c.wait(i) for i in ids]
            finally:
                await svc.close()

        results = run(main())
        assert_matches_sequential(results[0]["report"], FAST_WORKLOADS[0])
        assert_matches_sequential(results[1]["report"], FAST_WORKLOADS[1])


class TestStreaming:
    def test_events_use_trace_schema(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    msgs = []
                    async for m in c.submit_and_stream(
                            workload="MiniGMG-sse"):
                        msgs.append(m)
                    return msgs
            finally:
                await svc.close()

        msgs = run(main())
        events = [m["ev"] for m in msgs if m["t"] == "event"]
        kinds = [e["t"] for e in events]
        assert kinds[0] == "meta"          # session header first
        assert "compile" in kinds          # per-compile progress
        assert kinds[-1] == "done"         # terminal trace record
        assert msgs[-1]["t"] == "result"   # then the report
        assert_matches_sequential(msgs[-1]["report"], "MiniGMG-sse")

    def test_client_drop_does_not_kill_job(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(json.dumps(
                    {"t": "submit", "workload": "MiniGMG-sse",
                     "stream": True}).encode() + b"\n")
                await writer.drain()
                accepted = json.loads(await reader.readline())
                assert accepted["t"] == "accepted"
                writer.close()  # drop mid-stream, no goodbye
                # the job must still finish, observable by a new client
                async with ServiceClient(socket_path=sock) as c:
                    return accepted["id"], await c.wait(accepted["id"])
            finally:
                await svc.close()

        job_id, result = run(main())
        assert result["status"] == "done"
        assert_matches_sequential(result["report"], "MiniGMG-sse")


class TestQuotas:
    def test_max_active_refusal(self, service):
        from repro.service.quota import QuotaRegistry
        start, sock = service

        async def main():
            svc = await start(jobs=1, quotas=QuotaRegistry.from_specs(
                ["greedy:max_active=1"]))
            try:
                async with ServiceClient(socket_path=sock,
                                         tenant="greedy") as c:
                    first = await c.submit(workload="MiniGMG-sse")
                    with pytest.raises(ServiceError) as err:
                        await c.submit(workload="MiniGMG-ompif")
                    assert err.value.code == "quota-exceeded"
                    # after the first drains, the tenant may submit again
                    await c.wait(first)
                    second = await c.submit(workload="MiniGMG-ompif")
                    return await c.wait(second)
            finally:
                await svc.close()

        result = run(main())
        assert_matches_sequential(result["report"], "MiniGMG-ompif")

    def test_other_tenants_unaffected(self, service):
        from repro.service.quota import QuotaRegistry
        start, sock = service

        async def main():
            svc = await start(jobs=1, quotas=QuotaRegistry.from_specs(
                ["locked:max_active=0"]))
            try:
                async with ServiceClient(socket_path=sock,
                                         tenant="locked") as c:
                    with pytest.raises(ServiceError) as err:
                        await c.submit(workload="MiniGMG-sse")
                    assert err.value.code == "quota-exceeded"
                async with ServiceClient(socket_path=sock,
                                         tenant="free") as c:
                    job_id = await c.submit(workload="MiniGMG-sse")
                    return await c.wait(job_id)
            finally:
                await svc.close()

        assert run(main())["status"] == "done"


class TestProtocolErrors:
    def test_unknown_workload_is_structured(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    with pytest.raises(ServiceError) as err:
                        await c.submit(workload="NoSuchBench")
                    assert err.value.code == "unknown-workload"
                    assert "MiniGMG-sse" in err.value.detail  # names rows
                    # the connection survives the refusal
                    job_id = await c.submit(workload="MiniGMG-sse")
                    return await c.wait(job_id)
            finally:
                await svc.close()

        assert run(main())["status"] == "done"

    def test_garbage_line_gets_error_not_disconnect(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["t"] == "error"
                assert reply["code"] == "bad-request"
                # still usable afterwards
                writer.write(json.dumps({"t": "jobs"}).encode() + b"\n")
                await writer.drain()
                reply2 = json.loads(await reader.readline())
                writer.close()
                return reply2
            finally:
                await svc.close()

        assert run(main())["t"] == "ok"

    def test_unknown_submit_field_rejected(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    with pytest.raises(ServiceError) as err:
                        await c.submit(workload="MiniGMG-sse",
                                       workolad_typo=1)
                    return err.value
            finally:
                await svc.close()

        err = run(main())
        assert err.code == "bad-request"
        assert "workolad_typo" in err.detail

    def test_duplicate_job_id(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    await c.submit(workload="MiniGMG-sse", id="mine")
                    with pytest.raises(ServiceError) as err:
                        await c.submit(workload="MiniGMG-sse", id="mine")
                    return err.value
            finally:
                await svc.close()

        assert run(main()).code == "duplicate-job"

    def test_unknown_job_queries(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    for op in (c.status, c.wait, c.cancel):
                        with pytest.raises(ServiceError) as err:
                            await op("job-999")
                        assert err.value.code == "unknown-job"
            finally:
                await svc.close()

        run(main())

    def test_inline_config_submit(self, service):
        start, sock = service
        cfg = json.loads(get_config("MiniGMG-sse").to_json())

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    job_id = await c.submit(config=cfg)
                    return await c.wait(job_id)
            finally:
                await svc.close()

        result = run(main())
        assert_matches_sequential(result["report"], "MiniGMG-sse")

    def test_shutdown_message(self, service):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            serve = asyncio.create_task(svc.serve_until_shutdown())
            async with ServiceClient(socket_path=sock) as c:
                reply = await c.shutdown()
            await asyncio.wait_for(serve, timeout=10)
            return reply

        assert run(main())["shutdown"] is True


class TestServerState:
    def test_state_layout(self, service, tmp_path):
        start, sock = service

        async def main():
            svc = await start(jobs=1)
            try:
                async with ServiceClient(socket_path=sock) as c:
                    job_id = await c.submit(workload="MiniGMG-sse")
                    await c.wait(job_id)
            finally:
                await svc.close()

        run(main())
        state = tmp_path / "state"
        assert (state / "jobs.jsonl").exists()
        assert (state / "cache").is_dir()
        shards = [p for p in (state / "cache").rglob("*.jsonl")]
        assert shards, "verdict-cache shard should have been written"
        assert (state / "journals").is_dir()
        assert any((state / "journals").iterdir())
