"""Tests for the grammar-aware random program generator and the MiniC
renderer (the fuzz subsystem's front half)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.fuzz.generator import (
    _HAZARD_TEMPLATES,
    GeneratorOptions,
    generate_program,
)
from repro.fuzz.render import ast_size, render_unit
from repro.oraql.compiler import Compiler
from repro.fuzz.oracle import base_config


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(7)
        b = generate_program(7)
        assert a.source == b.source
        assert a.hazard_calls == b.hazard_calls

    def test_different_seeds_differ(self):
        sources = {generate_program(s).source for s in range(8)}
        assert len(sources) == 8

    def test_options_change_the_program(self):
        plain = generate_program(3, GeneratorOptions(hazard=False))
        hazard = generate_program(3, GeneratorOptions(hazard=True))
        assert plain.source != hazard.source
        assert not plain.hazard_calls
        assert hazard.hazard_calls
        assert all(name in _HAZARD_TEMPLATES for name in hazard.hazard_calls)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", range(12))
    def test_parses_and_roundtrips(self, seed):
        prog = generate_program(seed)
        module = compile_source(prog.source, filename=f"fuzz-{seed}.c")
        assert module is not None
        # the renderer and the frontend agree on the grammar: rendering
        # the generated AST and re-parsing is stable
        assert render_unit(prog.unit) == prog.source

    @pytest.mark.parametrize("seed", range(6))
    def test_programs_terminate_at_o0(self, seed):
        prog = generate_program(seed)
        run = Compiler().compile(
            base_config(seed, prog.source, opt_level=0)).run()
        assert run.ok, (run.state, run.error)
        assert run.stdout.endswith("\n")
        # the checksum epilogue prints at least one value
        assert run.stdout.split()

    def test_hazard_program_runs_clean_pessimistically(self):
        prog = generate_program(11, GeneratorOptions(hazard=True))
        run = Compiler().compile(
            base_config(11, prog.source, opt_level=0)).run()
        assert run.ok


class TestSizeAccounting:
    def test_ast_size_counts_structural_nodes(self):
        prog = generate_program(0)
        n = ast_size(prog.unit)
        assert n == prog.size
        assert n >= len(prog.unit.functions)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_generates_verifier_clean_source(self, seed):
        prog = generate_program(seed)
        assert prog.seed == seed
        assert ast_size(prog.unit) > 0
        compile_source(prog.source, filename="fuzz.c")

    def test_omp_can_be_disabled(self):
        for seed in range(20):
            prog = generate_program(
                seed, GeneratorOptions(allow_omp=False))
            assert "#pragma omp" not in prog.source
