"""Differential testing of the whole optimization pipeline.

The strongest correctness property we have: for any program, the output
of the O0 build and the O3 build must be identical (the compiler may
only get *faster*, never different).  We check a curated corpus plus a
hypothesis-generated family of random straight-line/loop programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import differential

CORPUS = {
    "stencil": """
    int main() {
      double a[32]; double b[32];
      for (int i = 0; i < 32; i++) { a[i] = i * 0.5; b[i] = 0.0; }
      for (int i = 1; i < 31; i++) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
      }
      double s = 0.0;
      for (int i = 0; i < 32; i++) { s = s + b[i]; }
      printf("%.6f\\n", s);
      return 0;
    }
    """,
    "in_place_update": """
    int main() {
      double a[16];
      for (int i = 0; i < 16; i++) { a[i] = i; }
      for (int i = 1; i < 16; i++) { a[i] = a[i] + a[i - 1]; }
      printf("%.1f\\n", a[15]);
      return 0;
    }
    """,
    "branchy_max": """
    int main() {
      double a[20];
      for (int i = 0; i < 20; i++) {
        a[i] = (i % 3 == 0) ? (20.0 - i) : (i * 1.5);
      }
      double mx = a[0];
      int arg = 0;
      for (int i = 1; i < 20; i++) {
        if (a[i] > mx) { mx = a[i]; arg = i; }
      }
      printf("%.1f %d\\n", mx, arg);
      return 0;
    }
    """,
    "struct_swap": """
    struct Pair { double lo; double hi; };
    void order(struct Pair* p) {
      if (p->lo > p->hi) {
        double t = p->lo;
        p->lo = p->hi;
        p->hi = t;
      }
    }
    int main() {
      struct Pair p;
      p.lo = 9.0; p.hi = 2.0;
      order(&p);
      printf("%.1f %.1f\\n", p.lo, p.hi);
      return 0;
    }
    """,
    "nested_accumulate": """
    int main() {
      double m[6][6];
      for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 6; j++) { m[i][j] = i * 6 + j; }
      }
      double trace = 0.0;
      double total = 0.0;
      for (int i = 0; i < 6; i++) {
        trace = trace + m[i][i];
        for (int j = 0; j < 6; j++) { total = total + m[i][j]; }
      }
      printf("%.0f %.0f\\n", trace, total);
      return 0;
    }
    """,
    "pointer_walk": """
    int main() {
      double a[10];
      for (int i = 0; i < 10; i++) { a[i] = i + 1.0; }
      double* p = a;
      double prod = 1.0;
      while (p < a + 5) {
        prod = prod * *p;
        p++;
      }
      printf("%.0f\\n", prod);
      return 0;
    }
    """,
    "alias_through_args": """
    void acc(double* dst, double* src, int n) {
      for (int i = 0; i < n; i++) { dst[i] = dst[i] + src[i]; }
    }
    int main() {
      double a[12];
      for (int i = 0; i < 12; i++) { a[i] = i; }
      acc(a, a, 12);      // dst == src: the compiler must stay honest
      acc(a + 6, a, 6);   // disjoint halves
      double s = 0.0;
      for (int i = 0; i < 12; i++) { s = s + a[i]; }
      printf("%.1f\\n", s);
      return 0;
    }
    """,
    "memarg_reuse": """
    double helper(double* x) {
      x[0] = x[0] * 2.0;
      return x[0] + x[1];
    }
    int main() {
      double buf[3];
      buf[0] = 1.5; buf[1] = 2.5; buf[2] = 0.0;
      buf[2] = helper(buf) + helper(buf + 1);
      printf("%.2f %.2f %.2f\\n", buf[0], buf[1], buf[2]);
      return 0;
    }
    """,
    "integer_mix": """
    int main() {
      int acc = 0;
      for (int i = 1; i <= 30; i++) {
        if (i % 2 == 0) { acc += i * i; }
        else { acc -= i; }
        acc = acc ^ (i << 2);
      }
      printf("%d\\n", acc);
      return 0;
    }
    """,
    "omp_private_buffers": """
    int main() {
      double out[40];
      double w = 0.25;
      #pragma omp parallel for
      for (int i = 0; i < 40; i++) {
        double t = i * w;
        out[i] = t * t + 1.0;
      }
      double s = 0.0;
      for (int i = 0; i < 40; i++) { s = s + out[i]; }
      printf("%.4f\\n", s);
      return 0;
    }
    """,
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_differential(name):
    differential(CORPUS[name])


# -- random program family ---------------------------------------------------

_ops = ["+", "-", "*"]


@st.composite
def straightline_program(draw):
    """A random program over two arrays with guarded mixed accesses."""
    n = draw(st.integers(6, 14))
    stmts = []
    for k in range(draw(st.integers(2, 6))):
        dst = draw(st.sampled_from(["a", "b"]))
        src = draw(st.sampled_from(["a", "b"]))
        i1 = draw(st.integers(0, n - 1))
        i2 = draw(st.integers(0, n - 1))
        op = draw(st.sampled_from(_ops))
        const = draw(st.integers(-3, 3))
        stmts.append(
            f"{dst}[{i1}] = {src}[{i2}] {op} {const}.0;")
    loop_src = draw(st.sampled_from(["a", "b"]))
    body = "\n          ".join(stmts)
    return f"""
    int main() {{
      double a[{n}]; double b[{n}];
      for (int i = 0; i < {n}; i++) {{ a[i] = i * 0.5; b[i] = {n} - i; }}
      {body}
      double s = 0.0;
      for (int i = 0; i < {n}; i++) {{
        s = s + a[i] * 3.0 - b[i];
        b[i] = {loop_src}[i] + s * 0.125;
      }}
      printf("%.6f %.6f\\n", s, b[{n - 1}]);
      return 0;
    }}
    """


@settings(max_examples=25, deadline=None)
@given(straightline_program())
def test_random_programs_differential(src):
    differential(src)
