"""Tests for the MiniC frontend: lexer, parser, and codegen semantics."""

import pytest

from repro.frontend import (
    CodegenError,
    LexError,
    ParseError,
    compile_source,
    parse,
    tokenize,
)
from repro.ir import (
    AllocaInst,
    F64,
    LoadInst,
    StoreInst,
    verify_module,
)

from helpers import differential, run_main


def out_of(src, **kw):
    m = compile_source(src)
    verify_module(m)
    return run_main(m, **kw).output()


class TestLexer:
    def test_tokens(self):
        toks = tokenize("int x = 42 + 0x1F; // comment\n double y;")
        kinds = [(t.kind, t.text) for t in toks if t.kind != "eof"]
        assert ("kw", "int") in kinds
        assert ("num", "42") in kinds
        assert ("num", "0x1F") in kinds
        assert not any("comment" in t for _, t in kinds)

    def test_float_literals(self):
        toks = tokenize("1.5 2e3 0.001")
        assert [t.kind for t in toks[:-1]] == ["fnum"] * 3

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\tc"')
        assert toks[0].value if hasattr(toks[0], "value") else True
        assert toks[0].text == "a\nb\tc"

    def test_char_literal(self):
        toks = tokenize("'A' '\\n'")
        assert toks[0].text == "65"
        assert toks[1].text == "10"

    def test_pragma_token(self):
        toks = tokenize("#pragma omp parallel for\nint x;")
        assert toks[0].kind == "pragma"

    def test_block_comment(self):
        toks = tokenize("int /* hi \n there */ x;")
        assert [t.text for t in toks[:-1]] == ["int", "x", ";"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestParser:
    def test_precedence(self):
        assert out_of('int main() { printf("%d\\n", 2 + 3 * 4); return 0; }'
                      ) == "14\n"
        assert out_of('int main() { printf("%d\\n", (2 + 3) * 4); return 0; }'
                      ) == "20\n"

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError, match=":2"):
            parse("int main() {\n !!; }")

    def test_struct_parsing(self):
        tu = parse("struct P { double x; double y; }; "
                   "struct P g; int main() { return 0; }")
        assert tu.structs[0].name == "P"
        assert len(tu.structs[0].fields) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = 1 return 0; }")


class TestSemantics:
    def test_if_else_both_branches(self):
        """Regression for the falsy-BasicBlock bug: the else branch must
        actually execute."""
        src = """
        int main() {
          int lo = 0; int hi = 10;
          if (hi < 5) { lo = 1; } else { hi = 5; }
          printf("%d %d\\n", lo, hi);
          return 0;
        }
        """
        assert out_of(src) == "0 5\n"

    def test_while_and_break_continue(self):
        src = """
        int main() {
          int i = 0; int s = 0;
          while (1 < 2) {
            i = i + 1;
            if (i == 3) { continue; }
            if (i > 6) { break; }
            s = s + i;
          }
          printf("%d %d\\n", i, s);
          return 0;
        }
        """
        assert out_of(src) == "7 18\n"

    def test_do_while(self):
        src = """
        int main() {
          int i = 0;
          do { i = i + 1; } while (i < 5);
          printf("%d\\n", i);
          return 0;
        }
        """
        assert out_of(src) == "5\n"

    def test_short_circuit_evaluation(self):
        src = """
        int side = 0;
        int bump() { side = side + 1; return 1; }
        int main() {
          int a = (0 > 1) && bump();
          int b = (1 > 0) || bump();
          printf("%d %d %d\\n", a, b, side);
          return 0;
        }
        """
        assert out_of(src) == "0 1 0\n"

    def test_ternary(self):
        assert out_of('int main() { int x = 5; '
                      'printf("%d\\n", (x > 3) ? 10 : 20); return 0; }'
                      ) == "10\n"

    def test_pointer_arithmetic_and_deref(self):
        src = """
        int main() {
          double a[4];
          a[0] = 1.5; a[1] = 2.5; a[2] = 3.5;
          double* p = a + 1;
          printf("%.1f %.1f\\n", *p, p[1]);
          return 0;
        }
        """
        assert out_of(src) == "2.5 3.5\n"

    def test_pointer_difference(self):
        src = """
        int main() {
          double a[8];
          double* p = a + 6;
          double* q = a + 2;
          printf("%d\\n", p - q);
          return 0;
        }
        """
        assert out_of(src) == "4\n"

    def test_address_of_and_struct_access(self):
        src = """
        struct V { double x; double y; int tag; };
        void scale(struct V* v, double s) {
          v->x = v->x * s;
          v->y = v->y * s;
        }
        int main() {
          struct V v;
          v.x = 1.0; v.y = 2.0; v.tag = 7;
          scale(&v, 3.0);
          printf("%.1f %.1f %d\\n", v.x, v.y, v.tag);
          return 0;
        }
        """
        assert out_of(src) == "3.0 6.0 7\n"

    def test_2d_arrays(self):
        src = """
        int main() {
          double m[3][4];
          for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
          }
          printf("%.0f %.0f\\n", m[2][3], m[0][1]);
          return 0;
        }
        """
        assert out_of(src) == "23 1\n"

    def test_global_variables(self):
        src = """
        double gv = 2.5;
        int counter = 0;
        double table[4] = { 1.0, 2.0, 3.0 };
        int main() {
          counter = counter + 3;
          printf("%.1f %d %.1f %.1f\\n", gv, counter, table[1], table[3]);
          return 0;
        }
        """
        assert out_of(src) == "2.5 3 2.0 0.0\n"

    def test_conversions(self):
        src = """
        int main() {
          int i = 7;
          double d = i / 2;         // int division then convert
          double e = i / 2.0;       // float division
          int t = (int)3.9;
          char c = 'A';
          printf("%.1f %.2f %d %d\\n", d, e, t, c + 1);
          return 0;
        }
        """
        assert out_of(src) == "3.0 3.50 3 66\n"

    def test_compound_assign_and_incdec(self):
        src = """
        int main() {
          int x = 10;
          x += 5; x -= 2; x *= 3; x /= 2;
          int y = x++;
          int z = ++x;
          printf("%d %d %d\\n", x, y, z);
          return 0;
        }
        """
        assert out_of(src) == "21 19 21\n"

    def test_sizeof(self):
        src = """
        struct P { double a; int b; };
        int main() {
          printf("%d %d %d\\n", sizeof(double), sizeof(int),
                 sizeof(struct P));
          return 0;
        }
        """
        assert out_of(src) == "8 8 16\n"

    def test_recursion(self):
        src = """
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main() { printf("%d\\n", fib(12)); return 0; }
        """
        assert out_of(src) == "144\n"

    def test_unknown_identifier_rejected(self):
        with pytest.raises(CodegenError, match="unknown"):
            compile_source("int main() { return nope; }")

    def test_call_arity_checked(self):
        with pytest.raises(CodegenError, match="expects"):
            compile_source("""
            int f(int a, int b) { return a + b; }
            int main() { return f(1); }
            """)


class TestMetadataEmission:
    def test_restrict_becomes_noalias(self):
        m = compile_source(
            "void f(double* restrict a, double* b) { a[0] = b[0]; }")
        f = m.get_function("f")
        assert f.args[0].is_noalias
        assert not f.args[1].is_noalias

    def test_tbaa_tags_attached(self):
        m = compile_source("""
        struct S { double d; int i; };
        void f(struct S* s, double* p) { s->d = p[0]; s->i = 3; }
        """)
        f = m.get_function("f")
        loads = [i for i in f.instructions() if isinstance(i, LoadInst)]
        stores = [i for i in f.instructions() if isinstance(i, StoreInst)]
        mem = [i for i in loads + stores
               if i.pointer.type.pointee in (F64,) or True]
        tagged = [i for i in stores if i.tbaa is not None]
        assert tagged, "stores must carry TBAA access tags"
        names = {i.tbaa.name for i in tagged}
        assert any("S::" in n for n in names)

    def test_restrict_scopes_attached(self):
        m = compile_source(
            "void f(double* restrict a, double* restrict b, int n) {"
            "  for (int i = 0; i < n; i++) { a[i] = b[i]; } }")
        f = m.get_function("f")
        accesses = [i for i in f.instructions()
                    if isinstance(i, (LoadInst, StoreInst))
                    and i.scoped is not None and i.scoped.alias_scopes]
        assert accesses

    def test_debug_locations(self):
        m = compile_source("int main() {\n  int x = 1;\n  return x;\n}",
                           "file.c")
        main = m.get_function("main")
        dbg = [i.dbg for i in main.instructions() if i.dbg is not None]
        assert dbg and all(d.file == "file.c" for d in dbg)


class TestOpenMPOutlining:
    SRC = """
    int main() {
      double a[10];
      double scale = 2.0;
      #pragma omp parallel for
      for (int i = 0; i < 10; i++) { a[i] = i * scale; }
      printf("%.1f\\n", a[9]);
      return 0;
    }
    """

    def test_outlined_function_created(self):
        m = compile_source(self.SRC)
        names = [n for n in m.functions if ".omp_outlined." in n]
        assert len(names) == 1
        out = m.functions[names[0]]
        assert [a.name for a in out.args] == ["tid", "__ctx", "lb", "ub"]
        assert "omp.ctx.main.0" in m.struct_types

    def test_captures_are_indirect(self):
        m = compile_source(self.SRC)
        out = next(f for n, f in m.functions.items()
                   if ".omp_outlined." in n)
        dptr_loads = [i for i in out.instructions()
                      if isinstance(i, LoadInst) and i.name.startswith("cap.")]
        assert {l.name for l in dptr_loads} == {"cap.a", "cap.scale"}

    def test_semantics(self):
        assert out_of(self.SRC) == "18.0\n"

    def test_non_canonical_loop_rejected(self):
        from repro.frontend import OmpError
        with pytest.raises(OmpError):
            compile_source("""
            int main() {
              #pragma omp parallel for
              for (int i = 10; i > 0; i--) { int x = i; }
              return 0;
            }
            """)


class TestCUDAFrontend:
    def test_kernel_attributes(self):
        m = compile_source("""
        __global__ void k(double* a, int n) {
          int t = cuda_thread_id();
          if (t < n) { a[t] = t; }
        }
        int main() {
          double* a = (double*)malloc(64);
          launch(k, 1, 8, a, 8);
          printf("%.0f\\n", a[7]);
          return 0;
        }
        """)
        k = m.get_function("k")
        assert k.target == "nvptx" and "kernel" in k.attrs
        assert run_main(m).output() == "7\n"

    def test_launch_requires_kernel(self):
        with pytest.raises(CodegenError, match="__global__"):
            compile_source("""
            void notk(double* a) { a[0] = 1.0; }
            int main() { launch(notk, 1, 1, (double*)malloc(8)); return 0; }
            """)
