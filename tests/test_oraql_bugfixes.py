"""Regression tests for driver/compiler bugfixes: the honored LTO flag,
response-file lifetime, closest-reference mismatch reports, and the
frequency strategy's worklist."""

import gc
import inspect
import os

from repro.oraql import (
    BenchmarkConfig,
    Compiler,
    DecisionSequence,
    ProbingDriver,
    RunResult,
    SourceFile,
    VerificationScript,
)

MAIN_TU = """
void mix_b(double* d, double* s, int n);
void mix_a(double* d, double* s, int n) {
  for (int i = 0; i < n; i++) { d[i] = s[i] * 2.0 + d[i]; }
}
int main() {
  double a[16]; double b[16];
  for (int i = 0; i < 16; i++) { a[i] = i; b[i] = 16.0 - i; }
  mix_a(a, b, 16);
  mix_b(b, a, 16);
  double s = 0.0;
  for (int i = 0; i < 16; i++) { s = s + a[i] + b[i]; }
  printf("s = %.4f\\n", s);
  return 0;
}
"""

LIB_TU = """
void mix_b(double* d, double* s, int n) {
  for (int i = 0; i < n; i++) { d[i] = s[i] * 0.5 + d[i]; }
}
"""


def two_tu_config(lto):
    return BenchmarkConfig(
        name="two-tu", lto=lto,
        sources=[SourceFile("main.c", MAIN_TU), SourceFile("lib.c", LIB_TU)])


class TestLTOFlagHonored:
    """`Compiler.compile` used to link all translation units before
    optimization unconditionally; non-LTO builds must optimize each TU
    in isolation and only link for execution."""

    def test_non_lto_optimizes_per_translation_unit(self):
        """The ORAQL query stream is TU-major without LTO (the whole
        pipeline runs on main.c before lib.c is touched) but pass-major
        with LTO (each pass sweeps the linked module)."""
        def scopes(lto):
            prog = Compiler().compile(two_tu_config(lto),
                                      sequence=DecisionSequence(),
                                      oraql_enabled=True)
            return [r.scope for r in prog.oraql.records]

        lto_scopes = scopes(True)
        non_lto_scopes = scopes(False)
        assert set(lto_scopes) == set(non_lto_scopes) == {"mix_a", "mix_b"}
        assert lto_scopes != non_lto_scopes
        # non-LTO: every main.c query precedes every lib.c query
        assert non_lto_scopes.index("mix_b") \
            > max(i for i, s in enumerate(non_lto_scopes) if s == "mix_a")

    def test_both_modes_run_correctly(self):
        outputs = set()
        for lto in (True, False):
            prog = Compiler().compile(two_tu_config(lto))
            result = prog.run()
            assert result.ok, result.error
            outputs.add(result.stdout)
        assert len(outputs) == 1  # linking strategy never changes output

    def test_non_lto_bookkeeping_covers_all_tus(self):
        """Per-TU stats and AA counters must be aggregated, not dropped."""
        prog = Compiler().compile(two_tu_config(False))
        assert prog.no_alias_count > 0
        # codegen stats exist for the linked module
        assert prog.stats.get("asm printer",
                              "# machine instructions generated") >= 0

    def test_probing_works_in_both_modes(self):
        for lto in (True, False):
            rep = ProbingDriver(two_tu_config(lto)).run()
            assert rep.opt_unique + rep.pess_unique > 0

    def test_single_tu_unaffected(self):
        cfg = BenchmarkConfig(name="one", sources=[
            SourceFile("main.c", LIB_TU.replace("mix_b", "mix") + """
int main() {
  double a[8]; double b[8];
  for (int i = 0; i < 8; i++) { a[i] = i; b[i] = 1.0; }
  mix(a, b, 8);
  printf("%.2f\\n", a[3]);
  return 0;
}
""")])
        h_default = Compiler().compile(cfg).exe_hash
        cfg.lto = True
        h_lto = Compiler().compile(cfg).exe_hash
        assert h_default == h_lto


class TestResponseFileLifetime:
    """`to_argument` used to leak one mkstemp file per long-sequence
    compile; response files now die with the sequence."""

    def test_cleanup_removes_spilled_files(self, tmp_path):
        seq = DecisionSequence([1] * 5000)
        arg = seq.to_argument(workdir=str(tmp_path))
        path = arg.split("@", 1)[1]
        assert os.path.exists(path)
        seq.cleanup()
        assert not os.path.exists(path)
        assert os.listdir(str(tmp_path)) == []

    def test_context_manager_cleans_up(self, tmp_path):
        with DecisionSequence([0, 1] * 3000) as seq:
            arg = seq.to_argument(workdir=str(tmp_path))
            path = arg.split("@", 1)[1]
            assert os.path.exists(path)
        assert not os.path.exists(path)

    def test_repeated_spills_all_cleaned(self, tmp_path):
        seq = DecisionSequence([1] * 5000)
        for _ in range(4):
            seq.to_argument(workdir=str(tmp_path))
        assert len(os.listdir(str(tmp_path))) == 4
        seq.cleanup()
        assert os.listdir(str(tmp_path)) == []

    def test_finalizer_cleans_up(self, tmp_path):
        seq = DecisionSequence([1] * 5000)
        arg = seq.to_argument(workdir=str(tmp_path))
        path = arg.split("@", 1)[1]
        del seq
        gc.collect()
        assert not os.path.exists(path)

    def test_short_sequences_spill_nothing(self, tmp_path):
        seq = DecisionSequence([1, 0, 1])
        assert seq.to_argument(workdir=str(tmp_path)) == "-opt-aa-seq=1 0 1"
        seq.cleanup()
        assert os.listdir(str(tmp_path)) == []


class TestExplainClosestReference:
    """`explain` used to diff only references[0] even for
    multi-reference configs, producing misleading mismatch reports."""

    def _result(self, text):
        return RunResult(text, "done")

    def test_explains_against_closest_reference(self):
        script = VerificationScript(
            ["alpha beta gamma delta\n", "one two three four\n"])
        report = script.explain(self._result("one two three FIVE\n"))
        # the mismatch must be located against the second (closest)
        # reference, not byte 0 of the first
        assert "three" in report
        assert "alpha" not in report

    def test_single_reference_unchanged(self):
        script = VerificationScript(["expected output\n"])
        report = script.explain(self._result("expected outXut\n"))
        assert "mismatch at byte" in report

    def test_matching_any_reference_is_ok(self):
        script = VerificationScript(["aaa\n", "bbb\n"])
        assert script.check(self._result("bbb\n"))
        assert script.explain(self._result("bbb\n")) == "ok"

    def test_failed_run_explained_first(self):
        script = VerificationScript(["x\n", "y\n"])
        report = script.explain(RunResult("", "trapped", "segfault"))
        assert "run failed" in report


class TestFrequencyWorklist:
    """The residue-class worklist is consumed from the left thousands of
    times on big benchmarks; it must be a deque, not an O(n) list.pop(0)."""

    def test_worklist_is_a_deque(self):
        from repro.oraql.strategies.frequency import FrequencyStrategy
        src = inspect.getsource(FrequencyStrategy._search)
        assert "popleft" in src
        assert ".pop(0)" not in src

    def test_frequency_strategy_still_correct(self):
        hazard = """
void shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double buf[64];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  shift(buf + 1, buf, 60);
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + buf[i] * i; }
  printf("%.6f\\n", s);
  return 0;
}
"""
        cfg = BenchmarkConfig(name="t", sources=[SourceFile("t.c", hazard)])
        chunked = ProbingDriver(cfg, strategy="chunked").run()
        freq = ProbingDriver(cfg, strategy="frequency").run()
        assert freq.pess_unique == chunked.pess_unique >= 1
