"""The service acceptance matrix (ISSUE acceptance criteria).

N simultaneous client sessions drive the full 16-workload suite
through the server — with at least one injected worker kill and one
server SIGKILL + ``--resume`` — and every report must be bit-identical
(pessimistic set and final executable hash) to a sequential
:class:`~repro.oraql.driver.ProbingDriver` run.

These take minutes; they are excluded from tier-1 by the ``service``
marker (``addopts = -m 'not service'``) and run explicitly with::

    pytest -m service tests/test_service_full.py

``test_smoke_*`` is the trimmed variant CI's service-smoke job runs
(``-m service -k smoke``).
"""

import asyncio
import os
import subprocess
import sys
import time

import pytest

from repro.oraql.driver import ProbingDriver
from repro.service import ProbingService, ServiceClient
from repro.workloads.base import get_config, row_names

pytestmark = pytest.mark.service

_SEQUENTIAL = {}


def sequential_reference(name):
    if name not in _SEQUENTIAL:
        _SEQUENTIAL[name] = ProbingDriver(get_config(name)).run()
    return _SEQUENTIAL[name]


def assert_matches_sequential(report_dict, name):
    ref = sequential_reference(name)
    assert report_dict["pessimistic_indices"] == \
        ref.pessimistic_indices, name
    assert report_dict["final_exe_hash"] == ref.final_exe_hash, name


KILL_FIRST_ATTEMPT = [{"kind": "worker-kill", "at": 0, "attempt": 0}]


class TestAcceptanceMatrix:
    def test_four_sessions_sixteen_workloads_with_worker_kill(
            self, tmp_path):
        """N=4 concurrent sessions split the full workload suite; one
        job additionally has its worker killed mid-probe."""
        sock = str(tmp_path / "s.sock")
        names = row_names()
        assert len(names) == 16
        # round-robin the 16 rows over 4 sessions
        lanes = [names[i::4] for i in range(4)]
        killed_workload = lanes[0][0]

        async def session(lane_index, lane):
            results = []
            async with ServiceClient(
                    socket_path=sock,
                    tenant=f"lane-{lane_index}") as c:
                for name in lane:
                    plan = (KILL_FIRST_ATTEMPT
                            if (lane_index, name) == (0, killed_workload)
                            else None)
                    job_id = await c.submit(workload=name,
                                            fault_plan=plan)
                    results.append((name, await c.wait(job_id)))
            return results

        async def main():
            svc = ProbingService(str(tmp_path / "state"), jobs=4,
                                 socket_path=sock)
            await svc.start()
            try:
                per_lane = await asyncio.gather(
                    *(session(i, lane)
                      for i, lane in enumerate(lanes)))
            finally:
                await svc.close()
            return svc, [r for lane in per_lane for r in lane]

        svc, results = asyncio.run(main())
        assert len(results) == 16
        for name, result in results:
            assert result["status"] == "done", (name, result)
            assert_matches_sequential(result["report"], name)
        # the injected worker kill actually happened
        assert svc.scheduler.pool_respawns >= 1
        killed = dict(results)[killed_workload]
        assert killed["report"]["worker_errors"]


def wait_for_socket(path, proc, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"server died on startup: {proc.stderr.read()}")
        time.sleep(0.05)
    raise AssertionError("server socket never appeared")


def spawn_server(state_dir, sock, resume=False, jobs=2):
    cmd = [sys.executable, "-m", "repro.service", "--socket", sock,
           "--jobs", str(jobs), "--state-dir", state_dir]
    if resume:
        cmd.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                     "src")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    wait_for_socket(sock, proc)
    return proc


class TestAcceptanceServerKill:
    def test_server_kill_and_resume_across_workloads(self, tmp_path):
        """SIGKILL the server with several jobs in flight; the resumed
        server finishes all of them bit-identically."""
        state = str(tmp_path / "state")
        sock1 = str(tmp_path / "s1.sock")
        in_flight = ["TestSNAP-openmp", "LULESH-seq", "MiniFE-openmp",
                     "TestSNAP-fortran"]
        server = spawn_server(state, sock1, jobs=2)
        try:
            async def phase1():
                async with ServiceClient(socket_path=sock1) as c:
                    quick = await c.submit(workload="MiniGMG-sse")
                    await c.wait(quick)
                    ids = [await c.submit(workload=n)
                           for n in in_flight]
                    await asyncio.sleep(1.0)  # let workers dig in
                    return quick, ids

            quick_id, ids = asyncio.run(phase1())
        finally:
            server.kill()
            server.wait()

        sock2 = str(tmp_path / "s2.sock")
        server2 = spawn_server(state, sock2, resume=True, jobs=2)
        try:
            async def phase2():
                async with ServiceClient(socket_path=sock2) as c:
                    done = await c.wait(quick_id)
                    rest = [await c.wait(i) for i in ids]
                    return done, rest

            done, rest = asyncio.run(phase2())
        finally:
            server2.kill()
            server2.wait()

        assert done["status"] == "done"
        assert_matches_sequential(done["report"], "MiniGMG-sse")
        for name, result in zip(in_flight, rest):
            assert result["status"] == "done", (name, result)
            assert_matches_sequential(result["report"], name)


class TestSmoke:
    def test_smoke_concurrent_jobs_with_worker_kill(self, tmp_path):
        """CI's service-smoke job: a real server subprocess, 3
        concurrent jobs over 2 workloads, one worker killed by the
        fault injector — reports bit-identical to sequential runs."""
        state = str(tmp_path / "state")
        sock = str(tmp_path / "s.sock")
        server = spawn_server(state, sock, jobs=2)
        try:
            async def one(tenant, name, plan=None):
                async with ServiceClient(socket_path=sock,
                                         tenant=tenant) as c:
                    job_id = await c.submit(workload=name,
                                            fault_plan=plan)
                    return name, await c.wait(job_id)

            async def main():
                return await asyncio.gather(
                    one("a", "MiniGMG-sse", KILL_FIRST_ATTEMPT),
                    one("b", "GridMini-offload"),
                    one("c", "MiniGMG-sse"))

            results = asyncio.run(main())
        finally:
            server.kill()
            server.wait()

        killed = results[0][1]
        assert killed["status"] == "done"
        assert killed["report"]["worker_errors"]  # the kill happened
        for name, result in results:
            assert result["status"] == "done", (name, result)
            assert_matches_sequential(result["report"], name)
