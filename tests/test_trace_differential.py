"""Differential proof that tracing is purely observational.

For three workloads and both probing strategies, a session run with a
full-event trace sink must reproduce the untraced session exactly:
same pessimistic set, same final/baseline executable hashes, same
report counters.  A chaos smoke then shows that a session killed
mid-probing (via ``repro.faults``) can never tear or duplicate a
``--trace-out`` file: the exporter is atomic and only runs on session
completion.
"""

import pytest

from repro.faults.injector import FaultInjector, FaultSpec, SessionKilled
from repro.oraql.driver import ProbingDriver
from repro.trace import QueryTrace
from repro.trace import export

from test_oraql_driver import HAZARD_SRC, SAFE_SRC, cfg_of

# third workload: a store/load hazard in a single loop body plus an
# independent reduction, so DSE and GVN issue queries that SAFE/HAZARD
# do not
PARTIAL_SRC = """
void stencil(double* out, double* in, int n) {
  for (int i = 1; i < n - 1; i++) {
    out[i] = (in[i - 1] + in[i] + in[i + 1]) / 3.0;
  }
}
int main() {
  double a[48]; double b[48];
  for (int i = 0; i < 48; i++) { a[i] = i * 0.25; b[i] = 0.0; }
  stencil(b, a, 48);
  stencil(a, b, 48);
  double s = 0.0;
  for (int i = 0; i < 48; i++) { s = s + a[i] + b[i]; }
  printf("s = %.6f\\n", s);
  return 0;
}
"""

WORKLOADS = [("safe", SAFE_SRC), ("hazard", HAZARD_SRC),
             ("partial", PARTIAL_SRC)]


def _fingerprint(report):
    return {
        "pessimistic": list(report.pessimistic_indices),
        "final_hash": report.final_program.exe_hash
        if report.final_program else None,
        "baseline_hash": report.baseline_program.exe_hash
        if report.baseline_program else None,
        "opt": (report.opt_unique, report.opt_cached),
        "pess": (report.pess_unique, report.pess_cached),
        "no_alias": (report.no_alias_original, report.no_alias_oraql),
        "compiles": report.compiles,
        "tests": (report.tests_run, report.tests_cached,
                  report.tests_deduced),
    }


@pytest.mark.parametrize("strategy", ["chunked", "frequency"])
@pytest.mark.parametrize("name,src", WORKLOADS)
def test_tracing_is_observational(name, src, strategy):
    plain = ProbingDriver(cfg_of(src, name), strategy=strategy).run()
    trace = QueryTrace()
    traced = ProbingDriver(cfg_of(src, name), strategy=strategy,
                           trace=trace).run()
    assert _fingerprint(traced) == _fingerprint(plain)
    # the trace actually observed the session it claims to mirror
    assert trace.records
    done = [r for r in trace.records if r["t"] == "done"]
    assert len(done) == 1
    assert done[0]["pessimistic"] == list(plain.pessimistic_indices)


@pytest.mark.parametrize("record_events", [True, False])
def test_timer_only_sink_is_also_observational(record_events):
    plain = ProbingDriver(cfg_of(HAZARD_SRC, "hazard")).run()
    trace = QueryTrace(record_events=record_events)
    traced = ProbingDriver(cfg_of(HAZARD_SRC, "hazard"), trace=trace).run()
    assert _fingerprint(traced) == _fingerprint(plain)


class TestChaosSmoke:
    """A mid-session fault must never corrupt or duplicate --trace-out."""

    def _traced_run(self, path, injector=None):
        trace = QueryTrace()
        driver = ProbingDriver(cfg_of(HAZARD_SRC, "hazard"),
                               injector=injector, trace=trace)
        report = driver.run()
        export.write_jsonl(path, trace.records)
        return report

    def test_killed_session_leaves_previous_trace_intact(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._traced_run(path)  # a completed session wrote a good trace
        before = export.read_jsonl(path)

        injector = FaultInjector([FaultSpec("session-kill", at=1)])
        with pytest.raises(SessionKilled):
            self._traced_run(path, injector=injector)
        assert injector.fired, "the planted fault must actually fire"

        # the file still holds exactly the first session's trace: not
        # torn, not duplicated, not partially overwritten
        assert export.read_jsonl(path) == before
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_killed_first_session_writes_nothing(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        injector = FaultInjector([FaultSpec("session-kill", at=0)])
        with pytest.raises(SessionKilled):
            self._traced_run(path, injector=injector)
        assert list(tmp_path.iterdir()) == []

    def test_failed_serialization_never_tears_the_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        export.write_jsonl(path, [{"t": "meta"}])
        before = export.read_jsonl(path)
        with pytest.raises(TypeError):
            export.write_jsonl(path, [{"t": "meta"}, {"bad": object()}])
        assert export.read_jsonl(path) == before
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_survivable_fault_still_produces_one_clean_trace(self, tmp_path):
        """A transient compiler fault (retried by the executor) must not
        duplicate events in the trace of the surviving session."""
        path = str(tmp_path / "trace.jsonl")
        injector = FaultInjector([FaultSpec("compiler-error", at=1)])
        report = self._traced_run(path, injector=injector)
        assert injector.fired
        assert report.retries >= 1
        records = export.read_jsonl(path)
        assert [r for r in records if r["t"] == "meta"] \
            == [{"t": "meta", "version": 1, "config": "hazard",
                 "strategy": "chunked"}]
        assert len([r for r in records if r["t"] == "done"]) == 1
