"""Tests for the scalar optimization passes (mem2reg, instcombine, DCE,
SimplifyCFG, EarlyCSE, GVN, DSE) — both that they fire and that they
stay sound."""

import pytest

from repro.frontend import compile_source
from repro.ir import (
    AllocaInst,
    F64,
    FunctionType,
    I1,
    I64,
    IRBuilder,
    LoadInst,
    Module,
    PhiInst,
    StoreInst,
    VOID,
    ptr,
    verify_function,
    verify_module,
)
from repro.passes import (
    CompilationContext,
    DSE,
    DeadCodeElim,
    EarlyCSE,
    GVN,
    InstCombine,
    Mem2Reg,
    PassManager,
    SimplifyCFG,
    parse_pipeline,
)

from helpers import compile_and_run, differential, run_main


def run_passes(module, spec):
    ctx = CompilationContext(module, verify_each=True)
    PassManager(ctx).run(parse_pipeline(spec))
    verify_module(module)
    return ctx


class TestMem2Reg:
    def test_promotes_scalar_alloca(self):
        src = """
        int main() {
          int x = 2;
          x = x + 3;
          printf("%d\\n", x);
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(m, "simplifycfg,mem2reg")
        main = m.get_function("main")
        allocas = [i for i in main.instructions()
                   if isinstance(i, AllocaInst)]
        assert allocas == []
        run = run_main(m)
        assert run.output() == "5\n"

    def test_phi_insertion_across_branches(self):
        src = """
        int main() {
          int x = 1;
          int c = 3;
          if (c > 2) { x = 10; } else { x = 20; }
          printf("%d\\n", x);
          return 0;
        }
        """
        m = compile_source(src)
        run_passes(m, "simplifycfg,mem2reg")
        assert run_main(m).output() == "10\n"

    def test_loop_carried_promotion(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 5; i++) { s = s + i; }
          printf("%d\\n", s);
          return 0;
        }
        """
        m = compile_source(src)
        run_passes(m, "simplifycfg,mem2reg")
        main = m.get_function("main")
        assert any(isinstance(i, PhiInst) for i in main.instructions())
        assert run_main(m).output() == "10\n"

    def test_escaped_alloca_not_promoted(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("entry"))
        x = b.alloca(I64)
        b.store(b.i64(1), x)
        b.call("escape", [x], type=VOID)
        b.ret()
        run_passes(module, "mem2reg")
        assert any(isinstance(i, AllocaInst) for i in fn.instructions())


class TestInstCombineAndDCE:
    def test_constant_folding(self, module):
        fn = module.add_function(FunctionType(I64, []), "f")
        b = IRBuilder(fn.add_block("e"))
        v = b.add(b.i64(2), b.i64(3))
        w = b.mul(v, b.i64(4))
        b.ret(w)
        run_passes(module, "instcombine")
        ret = fn.entry.terminator
        from repro.ir import ConstantInt
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 20

    def test_identities(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        b = IRBuilder(fn.add_block("e"))
        v = b.add(fn.args[0], b.i64(0))
        w = b.mul(v, b.i64(1))
        b.ret(w)
        run_passes(module, "instcombine,dce")
        assert fn.num_instructions() == 1  # just the ret

    def test_zext_icmp_fold(self, module):
        """The frontend's (zext i1) != 0 condition detour must fold."""
        from repro.ir import CastInst, ICmpInst
        fn = module.add_function(FunctionType(VOID, [I64]), "f")
        e, t, f = (fn.add_block(n) for n in "etf")
        b = IRBuilder(e)
        c = b.icmp("slt", fn.args[0], b.i64(5))
        z = b.cast("zext", c, I64)
        c2 = b.icmp("ne", z, b.i64(0))
        b.cond_br(c2, t, f)
        for bb in (t, f):
            b.position_at_end(bb)
            b.ret()
        run_passes(module, "instcombine,dce")
        term = e.terminator
        assert term.condition is c

    def test_dce_keeps_side_effects(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.store(b.f64(1.0), fn.args[0])
        b.call("printf", [fn.args[0]], type=I64)  # unused result
        b.ret()
        run_passes(module, "dce")
        ops = [i.opcode for i in fn.instructions()]
        assert "store" in ops and "call" in ops


class TestSimplifyCFG:
    def test_constant_branch_folding(self):
        src = """
        int main() {
          if (1 < 2) { printf("yes\\n"); } else { printf("no\\n"); }
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(m, "mem2reg,instcombine,simplifycfg,dce")
        assert ctx.stats.get("Simplify the CFG", "# branches folded") >= 1
        assert run_main(m).output() == "yes\n"

    def test_unreachable_block_removal(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        e = fn.add_block("e")
        dead = fn.add_block("dead")
        b = IRBuilder(e)
        b.ret()
        b.position_at_end(dead)
        b.ret()
        run_passes(module, "simplifycfg")
        assert dead not in fn.blocks

    def test_block_merging(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        a = fn.add_block("a")
        c = fn.add_block("c")
        b = IRBuilder(a)
        b.br(c)
        b.position_at_end(c)
        b.ret()
        run_passes(module, "simplifycfg")
        assert len(fn.blocks) == 1


class TestEarlyCSE:
    def test_expression_cse_across_constant_instances(self, module):
        fn = module.add_function(FunctionType(I64, [I64]), "f")
        b = IRBuilder(fn.add_block("e"))
        v1 = b.mul(fn.args[0], b.i64(3))
        v2 = b.mul(fn.args[0], b.i64(3))  # distinct ConstantInt objects
        b.ret(b.add(v1, v2))
        ctx = run_passes(module, "early-cse")
        assert ctx.stats.get("Early CSE", "# instructions eliminated") == 1

    def test_load_cse_blocked_by_may_alias_store(self, module):
        fn = module.add_function(
            FunctionType(F64, [ptr(F64), ptr(F64)]), "f", ["a", "b"])
        b = IRBuilder(fn.add_block("e"))
        l1 = b.load(fn.args[0])
        b.store(b.f64(9.0), fn.args[1])   # may clobber a
        l2 = b.load(fn.args[0])
        b.ret(b.fadd(l1, l2))
        run_passes(module, "early-cse")
        loads = [i for i in fn.instructions() if isinstance(i, LoadInst)]
        assert len(loads) == 2  # conservative: both kept

    def test_load_cse_across_noalias_store(self, module):
        fn = module.add_function(FunctionType(F64, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        l1 = b.load(fn.args[0])
        b.store(b.f64(9.0), x)            # provably no-alias
        l2 = b.load(fn.args[0])
        b.ret(b.fadd(l1, l2))
        run_passes(module, "early-cse")
        loads = [i for i in fn.instructions() if isinstance(i, LoadInst)]
        assert len(loads) == 1

    def test_store_to_load_forwarding(self, module):
        fn = module.add_function(FunctionType(F64, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.store(b.f64(4.0), fn.args[0])
        l = b.load(fn.args[0])
        b.ret(l)
        run_passes(module, "early-cse,dce")
        assert not any(isinstance(i, LoadInst) for i in fn.instructions())

    def test_join_point_clears_loads(self):
        """Regression: available loads must not survive into loop headers
        (the miscompile found during bring-up)."""
        src = """
        int main() {
          double s = 0.0;
          double buf[4];
          buf[0] = 1.0;
          for (int i = 0; i < 3; i++) {
            s = s + buf[0];
            buf[0] = buf[0] + 1.0;
          }
          printf("%.1f\\n", s);
          return 0;
        }
        """
        out = differential(src)
        assert out == "6.0\n"


class TestGVN:
    def test_cross_block_store_to_load(self):
        src = """
        int main() {
          double x[4];
          x[1] = 7.5;
          double v;
          if (x[1] > 0.0) { v = x[1]; } else { v = 0.0; }
          printf("%.2f\\n", v);
          return 0;
        }
        """
        m = compile_source(src)
        ctx = run_passes(m, "simplifycfg,mem2reg,instcombine,early-cse,gvn")
        assert run_main(m).output() == "7.50\n"

    def test_redundant_load_elimination(self, module):
        fn = module.add_function(FunctionType(F64, [ptr(F64)]), "f")
        e, t = fn.add_block("e"), fn.add_block("t")
        b = IRBuilder(e)
        l1 = b.load(fn.args[0])
        c = b.fcmp("ogt", l1, b.f64(0.0))
        b.cond_br(c, t, t)
        b.position_at_end(t)
        l2 = b.load(fn.args[0])
        b.ret(b.fadd(l1, l2))
        ctx = run_passes(module, "gvn")
        assert ctx.stats.get("Global Value Numbering", "# loads deleted") == 1

    def test_clobbered_load_kept(self, module):
        fn = module.add_function(
            FunctionType(F64, [ptr(F64), ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        l1 = b.load(fn.args[0])
        b.store(b.f64(1.0), fn.args[1])
        l2 = b.load(fn.args[0])
        b.ret(b.fadd(l1, l2))
        ctx = run_passes(module, "gvn")
        assert ctx.stats.get("Global Value Numbering", "# loads deleted") == 0


class TestDSE:
    def test_overwritten_store_deleted(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.store(b.f64(1.0), fn.args[0])
        b.store(b.f64(2.0), fn.args[0])
        b.ret()
        ctx = run_passes(module, "dse")
        stores = [i for i in fn.instructions() if isinstance(i, StoreInst)]
        assert len(stores) == 1
        assert stores[0].value.value == 2.0

    def test_intervening_may_read_blocks(self, module):
        fn = module.add_function(
            FunctionType(F64, [ptr(F64), ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.store(b.f64(1.0), fn.args[0])
        l = b.load(fn.args[1])          # may read the stored value
        b.store(b.f64(2.0), fn.args[0])
        b.ret(l)
        run_passes(module, "dse")
        stores = [i for i in fn.instructions() if isinstance(i, StoreInst)]
        assert len(stores) == 2

    def test_never_loaded_local_stores_die(self, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        b.store(b.f64(1.0), x)
        b.store(b.f64(2.0), x)
        b.ret()
        ctx = run_passes(module, "dse")
        assert not any(isinstance(i, StoreInst) for i in fn.instructions())
        assert ctx.stats.get("Dead Store Elimination",
                             "# stores deleted") == 2

    def test_loaded_local_stores_survive(self, module):
        fn = module.add_function(FunctionType(F64, []), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        b.store(b.f64(1.0), x)
        l = b.load(x)
        b.ret(l)
        run_passes(module, "dse")
        assert any(isinstance(i, StoreInst) for i in fn.instructions())
