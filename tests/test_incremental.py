"""Incremental recompilation keyed by decision-sequence deltas.

The contract under test: ``Compiler.compile(config, sequence,
baseline=prev)`` must produce a program *bit-identical* to a full
compile — executable hash, per-function body hashes, the unique-query
index space, and every aggregate counter — while re-running only the
functions (and only the pipeline tail) the decision delta can affect.
Covers the unit layers (delta computation, baseline cache, snapshot
resume state, clone helpers, the per-TU merge helpers) and the
end-to-end layers (compiler, probing driver on-vs-off, fallback gates,
kill-and-resume with incremental on).
"""

import pytest

from repro.analysis.aliasing import AAResults
from repro.faults.injector import FaultInjector, FaultSpec, SessionKilled
from repro.frontend import compile_source
from repro.ir import (
    clone_function_into,
    detach_uses,
    function_hash,
    mirror_use_order,
)
from repro.oraql import (
    BenchmarkConfig,
    ProbingDriver,
    SessionJournal,
    SourceFile,
)
from repro.oraql.compiler import Compiler
from repro.oraql.incremental import (
    BaselineCache,
    ResumeState,
    affected_functions,
    decision_delta,
    effective_bit,
)
from repro.oraql.pass_ import DumpFlags
from repro.oraql.sequence import DecisionSequence
from repro.passes import CompilationContext

# a workload with several functions, real aliasing hazards, and enough
# queries that deltas land in different scopes
SRC = """
void scale(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
void axpy(double* y, double* x, int n) {
  for (int i = 0; i < n; i++) { y[i] = y[i] + 2.0 * x[i]; }
}
double dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
  return s;
}
int main() {
  double buf[64];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  scale(buf + 1, buf, 60);
  axpy(buf, buf + 8, 32);
  printf("s = %.6f\\n", dot(buf, buf + 2, 48));
  return 0;
}
"""

HAZARD_SRC = """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double buf[64];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  scale_shift(buf + 1, buf, 60);
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + buf[i] * i; }
  printf("buf = %.6f\\n", s);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


def snapshot(prog):
    """Everything that must be bit-identical between a full and an
    incremental compile of the same (config, sequence)."""
    o = prog.oraql
    aa = prog.ctx.aa
    return {
        "exe": prog.exe_hash,
        "fn_hashes": dict(prog.fn_hashes),
        "records": sorted((r.index, r.optimistic, r.scope,
                           r.issuing_pass, r.ordinal) for r in o.records),
        "unique": (o.opt_unique, o.pess_unique, o.opt_cached,
                   o.pess_cached),
        "by_pass": dict(o.unique_by_pass),
        "chain": (aa.no_alias_count, aa.must_alias_count,
                  aa.total_queries),
        "chain_by_pass": dict(aa.no_alias_by_pass),
        "by_issuer": dict(aa.queries_by_issuer),
    }


# ---------------------------------------------------------------------------
# unit layer: delta computation and the baseline cache
# ---------------------------------------------------------------------------

class Rec:
    """A minimal stand-in for QueryRecord in delta/affected units."""

    def __init__(self, index, optimistic, scope="f", ordinal=0):
        self.index = index
        self.optimistic = optimistic
        self.scope = scope
        self.ordinal = ordinal


class TestDeltaUnits:
    def test_effective_bit_defaults_optimistic_past_end(self):
        assert effective_bit([0, 1], 0) is False
        assert effective_bit([0, 1], 1) is True
        assert effective_bit([0, 1], 5) is True
        assert effective_bit([], 0) is True

    def test_decision_delta_none_when_stream_replays(self):
        records = [Rec(0, True), Rec(1, False), Rec(2, True)]
        assert decision_delta(records, [1, 0, 1]) is None
        # bits past the recorded stream are never consumed
        assert decision_delta(records, [1, 0, 1, 0, 0]) is None

    def test_decision_delta_first_divergence(self):
        records = [Rec(0, True), Rec(1, False), Rec(2, True)]
        assert decision_delta(records, [0, 0, 1]) == 0
        assert decision_delta(records, [1, 1, 1]) == 1
        assert decision_delta(records, [1, 0, 0]) == 2
        # short bits: missing indices read optimistic
        assert decision_delta(records, []) == 1

    def test_affected_functions(self):
        records = [Rec(0, True, "f"), Rec(1, True, "g"),
                   Rec(2, True, "f"), Rec(3, True, "h")]
        assert affected_functions(records, 3) == {"h"}
        assert affected_functions(records, 2) == {"f", "h"}
        assert affected_functions(records, 0) == {"f", "g", "h"}

    def test_resume_state_best_ordinal(self):
        st = ResumeState()
        st.snapshots[2] = object()
        st.snapshots[5] = object()
        assert st.best_ordinal(1) == 0   # nothing at or below 1
        assert st.best_ordinal(2) == 2
        assert st.best_ordinal(4) == 2
        assert st.best_ordinal(9) == 5


class TestBaselineCache:
    class Prog:
        def __init__(self, records):
            class O:
                pass
            self.oraql = O()
            self.oraql.records = records

    def test_best_for_maximizes_agreement(self):
        cache = BaselineCache()
        far = self.Prog([Rec(0, True), Rec(1, True), Rec(2, True)])
        near = self.Prog([Rec(0, True), Rec(1, False), Rec(2, True)])
        cache.add(far)
        cache.add(near)
        # [1,0,0]: near agrees through index 1, far diverges at 1
        assert cache.best_for([1, 0, 0]) is near
        # full agreement (delta None) beats any partial match
        assert cache.best_for([1, 1, 1]) is far

    def test_capacity_evicts_oldest(self):
        cache = BaselineCache(capacity=2)
        progs = [self.Prog([Rec(0, True)]) for _ in range(3)]
        for p in progs:
            cache.add(p)
        assert len(cache) == 2
        assert cache.best_for([0]) is not progs[0]

    def test_none_and_oraql_free_programs_ignored(self):
        cache = BaselineCache()
        cache.add(None)

        class Plain:
            oraql = None
        cache.add(Plain())
        assert len(cache) == 0
        assert cache.best_for([1]) is None


# ---------------------------------------------------------------------------
# unit layer: clone helpers the splice/resume machinery rests on
# ---------------------------------------------------------------------------

class TestCloneHelpers:
    def _module_and_fn(self):
        module = compile_source(SRC, "t.c")
        return module, module.functions["scale"]

    def test_clone_is_print_identical(self):
        module, fn = self._module_and_fn()
        clone = clone_function_into(fn, module)
        assert function_hash(clone) == function_hash(fn)

    def test_clone_carries_fresh_name_counter(self):
        module, fn = self._module_and_fn()
        fn.unique_name("t")
        fn.unique_name("t")
        clone = clone_function_into(fn, module)
        # the clone hands out the same next name the original would —
        # a resumed pipeline must generate identical fresh names
        assert clone.unique_name("t") == fn.unique_name("t")

    def test_detach_uses_removes_clone_from_live_use_lists(self):
        module, fn = self._module_and_fn()
        clone = clone_function_into(fn, module)
        clone_insts = set(clone.instructions())
        # cloning registered the clone's instructions as users of live
        # values (shared constants, globals, functions) — phantom uses
        # that use-counting passes would observe
        polluted = [v for inst in fn.instructions() for v in inst.operands
                    if any(u in clone_insts for u in v.users)]
        assert polluted, "expected the clone to register as a user"
        detach_uses(clone)
        for inst in fn.instructions():
            for v in inst.operands:
                assert not any(u in clone_insts for u in v.users)
        for g in module.globals.values():
            assert not any(u in clone_insts for u in g.users)

    def test_mirror_use_order_replays_source_iteration_order(self):
        module, fn = self._module_and_fn()
        vmap = {}
        clone = clone_function_into(fn, module, value_map=vmap)
        detach_uses(clone)
        mirror_use_order(fn, vmap)
        values = list(fn.args) + [i for bb in fn.blocks
                                  for i in bb.instructions]
        mirrored = 0
        for v in values:
            c = vmap[v.id]
            want = [vmap[u.id] for u in v.users if u.id in vmap]
            assert list(c.users) == want
            mirrored += len(want)
        assert mirrored, "expected at least one mirrored use"


# ---------------------------------------------------------------------------
# unit layer: the per-TU merge helpers (counter folding)
# ---------------------------------------------------------------------------

class TestMergeHelpers:
    def test_aaresults_merge_folds_counters(self):
        a = AAResults([])
        b = AAResults([])
        a.no_alias_count, a.must_alias_count, a.total_queries = 3, 1, 10
        b.no_alias_count, b.must_alias_count, b.total_queries = 2, 2, 7
        a.no_alias_by_pass["GVN"] = 3
        b.no_alias_by_pass["GVN"] = 1
        b.no_alias_by_pass["DSE"] = 1
        b.queries_by_issuer["LICM"] = 4
        b._tally("f")[2] += 7
        a.merge(b)
        assert (a.no_alias_count, a.must_alias_count,
                a.total_queries) == (5, 3, 17)
        assert a.no_alias_by_pass["GVN"] == 4
        assert a.no_alias_by_pass["DSE"] == 1
        assert a.queries_by_issuer["LICM"] == 4
        # per-(scope, ordinal) tallies folded, not replaced
        assert sum(t[2] for t in a.scope_counts.values()) == 7

    def test_aaresults_merge_self_is_noop(self):
        a = AAResults([])
        a.no_alias_count = 3
        a.merge(a)
        assert a.no_alias_count == 3

    def test_context_merge_folds_everything(self):
        m1 = compile_source("int main() { return 0; }", "a.c")
        m2 = compile_source("int main() { return 0; }", "b.c")
        c1, c2 = CompilationContext(m1), CompilationContext(m2)
        c1.pass_executions, c2.pass_executions = 4, 6
        c2.aa.no_alias_count = 5
        c2.debug_log.append("from-tu-2")
        c1.merge(c2)
        assert c1.pass_executions == 10
        assert c1.aa.no_alias_count == 5
        assert "from-tu-2" in c1.debug_log
        # merging a context into itself must not double anything
        c1.merge(c1)
        assert c1.pass_executions == 10


# ---------------------------------------------------------------------------
# end to end: incremental compiles are bit-identical to full compiles
# ---------------------------------------------------------------------------

class TestIncrementalCompiler:
    @pytest.fixture(scope="class")
    def base(self):
        compiler = Compiler()
        cfg = cfg_of(SRC)
        prog = compiler.compile(cfg, DecisionSequence(),
                                oraql_enabled=True, collect_resume=True)
        assert prog.oraql.unique_queries >= 3
        return compiler, cfg, prog

    def _pair(self, base, bits):
        """(incremental, full) programs for the same bits."""
        compiler, cfg, baseline = base
        inc = compiler.compile(cfg, DecisionSequence(list(bits)),
                               oraql_enabled=True, baseline=baseline,
                               collect_resume=True)
        full = Compiler().compile(cfg, DecisionSequence(list(bits)),
                                  oraql_enabled=True)
        return inc, full

    def test_identical_bits_pure_splice(self, base):
        _, _, baseline = base
        n = baseline.oraql.unique_queries
        inc, full = self._pair(base, [1] * n)
        assert inc.incremental is not None
        assert inc.incremental.delta is None
        assert inc.incremental.reoptimized == 0
        assert snapshot(inc) == snapshot(full)
        # splicing everything runs no passes at all
        assert inc.pass_executions == 0

    @pytest.mark.parametrize("flip", ["first", "mid", "last"])
    def test_flip_bit_identical(self, base, flip):
        _, _, baseline = base
        n = baseline.oraql.unique_queries
        k = {"first": 0, "mid": n // 2, "last": n - 1}[flip]
        bits = [1] * n
        bits[k] = 0
        inc, full = self._pair(base, bits)
        assert inc.incremental is not None
        assert snapshot(inc) == snapshot(full)
        assert inc.pass_executions < full.pass_executions

    def test_chained_baselines_stay_bit_identical(self, base):
        compiler, cfg, baseline = base
        n = baseline.oraql.unique_queries
        bits = [1] * n
        bits[n - 1] = 0
        mid = compiler.compile(cfg, DecisionSequence(list(bits)),
                               oraql_enabled=True, baseline=baseline,
                               collect_resume=True)
        assert mid.incremental is not None
        bits[0] = 0
        inc = compiler.compile(cfg, DecisionSequence(list(bits)),
                               oraql_enabled=True, baseline=mid,
                               collect_resume=True)
        full = Compiler().compile(cfg, DecisionSequence(list(bits)),
                                  oraql_enabled=True)
        assert inc.incremental is not None
        assert snapshot(inc) == snapshot(full)

    def test_mid_pipeline_resume_happens(self, base):
        """Somewhere in the flip matrix a function must actually resume
        mid-pipeline (not just re-run from the frontend) — otherwise
        the snapshot machinery is dead weight."""
        _, _, baseline = base
        n = baseline.oraql.unique_queries
        skipped = 0
        for k in range(n):
            bits = [1] * n
            bits[k] = 0
            inc, full = self._pair(base, bits)
            assert inc.incremental is not None, f"fell back at flip {k}"
            assert snapshot(inc) == snapshot(full), f"mismatch at flip {k}"
            skipped += inc.incremental.passes_resumed_past
        assert skipped > 0

    def test_outcome_bookkeeping(self, base):
        _, _, baseline = base
        n = baseline.oraql.unique_queries
        bits = [1] * n
        bits[n - 1] = 0
        inc, _ = self._pair(base, bits)
        out = inc.incremental
        assert out.reoptimized >= 1
        assert out.spliced >= 1
        assert out.reoptimized + out.spliced <= out.total_functions
        assert out.resumed <= out.reoptimized
        assert inc.fn_hashes  # per-function hashes always exposed


class TestFallbackGates:
    def test_multi_tu_without_lto_falls_back(self):
        cfg = BenchmarkConfig(name="2tu", sources=[
            SourceFile("a.c", "double f(double* p) { return p[0]; }"),
            SourceFile("b.c", "int main() { double x[2]; x[0] = 3.0;"
                              " printf(\"%.1f\\n\", x[0]); return 0; }"),
        ])
        compiler = Compiler()
        base = compiler.compile(cfg, DecisionSequence(),
                                oraql_enabled=True, collect_resume=True)
        prog = compiler.compile(cfg, DecisionSequence([0]),
                                oraql_enabled=True, baseline=base)
        assert prog.incremental is None
        assert compiler.incremental_attempts >= 1

    def test_dump_mode_skips_incremental_entirely(self):
        cfg = cfg_of(SRC)
        compiler = Compiler()
        base = compiler.compile(cfg, DecisionSequence(),
                                oraql_enabled=True, collect_resume=True)
        before = compiler.incremental_attempts
        prog = compiler.compile(cfg, DecisionSequence([0]),
                                oraql_enabled=True, baseline=base,
                                dump=DumpFlags(first=True, optimistic=True,
                                               pessimistic=True))
        assert prog.incremental is None
        assert compiler.incremental_attempts == before  # gated, not tried

    def test_oraql_free_baseline_falls_back(self):
        cfg = cfg_of(SRC)
        compiler = Compiler()
        base = compiler.compile(cfg)  # no ORAQL records at all
        prog = compiler.compile(cfg, DecisionSequence([0]),
                                oraql_enabled=True, baseline=base)
        assert prog.incremental is None

    def test_different_config_object_falls_back(self):
        compiler = Compiler()
        base = compiler.compile(cfg_of(SRC), DecisionSequence(),
                                oraql_enabled=True, collect_resume=True)
        prog = compiler.compile(cfg_of(SRC), DecisionSequence([0]),
                                oraql_enabled=True, baseline=base)
        assert prog.incremental is None


class TestFnHashDump:
    def test_fn_hashes_match_bodies_and_dump_lines(self):
        cfg = cfg_of(SRC)
        prog = Compiler().compile(
            cfg, DecisionSequence(), oraql_enabled=True,
            dump=DumpFlags(first=True, optimistic=True, pessimistic=True))
        for name, fn in prog.ctx.module.functions.items():
            assert prog.fn_hashes[name] == function_hash(fn)
        lines = [l for l in prog.ctx.debug_log
                 if l.startswith("[fn-hash] ")]
        assert len(lines) == len(prog.fn_hashes)
        for line in lines:
            _, name, fh = line.split()
            assert prog.fn_hashes[name] == fh


# ---------------------------------------------------------------------------
# driver layer: --incremental on must change costs, never results
# ---------------------------------------------------------------------------

class TestDriverOnOff:
    @pytest.mark.parametrize("src", [SRC, HAZARD_SRC])
    def test_probing_bit_identical(self, src):
        cfg = cfg_of(src)
        on = ProbingDriver(cfg, incremental="on").run()
        off = ProbingDriver(cfg, incremental="off").run()
        assert on.pessimistic_indices == off.pessimistic_indices
        assert on.final_program.exe_hash == off.final_program.exe_hash
        assert on.final_program.fn_hashes == off.final_program.fn_hashes
        # the report's query statistics come from the final compile,
        # which ran incrementally — they must still be exact
        assert (on.opt_unique, on.pess_unique, on.opt_cached,
                on.pess_cached) == (off.opt_unique, off.pess_unique,
                                    off.opt_cached, off.pess_cached)
        assert on.unique_by_pass == off.unique_by_pass
        assert on.no_alias_oraql == off.no_alias_oraql
        assert on.incremental_enabled and not off.incremental_enabled
        assert on.incremental_compiles > 0
        assert on.pass_executions < off.pass_executions

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ProbingDriver(cfg_of(SRC), incremental="sometimes")


class TestKillAndResumeIncremental:
    """Satellite acceptance: kill an ``--incremental on`` session
    mid-flight, resume it from the journal, and require the resumed
    report to match an uninterrupted *full-compile* run bit for bit."""

    def test_resume_with_incremental_is_bit_identical(self, tmp_path):
        cfg = cfg_of(HAZARD_SRC)
        ref = ProbingDriver(cfg, incremental="off").run()
        assert not ref.fully_optimistic

        jdir = str(tmp_path / "journal")
        injector = FaultInjector([FaultSpec("session-kill", at=2)])
        journal = SessionJournal.for_config(jdir, cfg, "chunked")
        with pytest.raises(SessionKilled):
            ProbingDriver(cfg, journal=journal, injector=injector,
                          incremental="on").run()

        resumed_journal = SessionJournal.for_config(jdir, cfg, "chunked",
                                                    resume=True)
        assert not resumed_journal.completed
        rep = ProbingDriver(cfg, journal=resumed_journal,
                            incremental="on").run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert rep.final_program.exe_hash == ref.final_program.exe_hash
        assert rep.final_program.fn_hashes == ref.final_program.fn_hashes
        assert rep.tests_run + rep.tests_cached \
            == ref.tests_run + ref.tests_cached
        final = SessionJournal.for_config(jdir, cfg, "chunked",
                                          resume=True)
        assert final.completed
        assert final.pessimistic_from_done == ref.pessimistic_indices
