"""Tests for the importance-mining driver: flip-subset bisection
invariants against synthetic cycle oracles (unit + Hypothesis),
determinism, budget-graceful partial results, kill-and-resume over the
journal's measure records, and the real compiled pipeline end-to-end.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector, FaultSpec, SessionKilled
from repro.oraql import (
    BenchmarkConfig,
    ImportanceDriver,
    MeasurementBudgetExhausted,
    SessionJournal,
    SourceFile,
    SyntheticCycleOracle,
    mine_important,
    render_importance_report,
)
from repro.oraql.cache import config_fingerprint
from repro.oraql.importance import Measurement

# two disjoint arrays: every alias query is safe, and the no-alias
# answers pay off (the vectorizer needs them), so the importance driver
# has real cycle deltas to mine
AXPY_SRC = """
void axpy(double* y, double* x, int n) {
  for (int i = 0; i < n; i++) { y[i] = y[i] + 2.0 * x[i]; }
}
int main() {
  double x[64]; double y[64];
  for (int i = 0; i < 64; i++) { x[i] = i * 0.5; y[i] = 1.0; }
  axpy(y, x, 64);
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + y[i]; }
  printf("s = %.4f\\n", s);
  return 0;
}
"""


# three independent loops over disjoint array pairs: several safe
# queries whose flips produce *distinct* executables, so mining needs
# genuinely many measurements (budget and resume tests want that)
MULTI_SRC = """
void s1(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
}
void s2(double* c, double* d, int n) {
  for (int i = 0; i < n; i++) { c[i] = d[i] * 2.0; }
}
void s3(double* e, double* f, int n) {
  for (int i = 0; i < n; i++) { e[i] = e[i] + f[i] * 0.5; }
}
int main() {
  double a[48]; double b[48]; double c[48]; double d[48];
  for (int i = 0; i < 48; i++) {
    a[i] = 0.0; b[i] = i * 1.5; c[i] = 0.0; d[i] = i + 2.0;
  }
  s1(a, b, 48);
  s2(c, d, 48);
  s3(a, c, 48);
  double s = 0.0;
  for (int i = 0; i < 48; i++) { s = s + a[i] + c[i]; }
  printf("s = %.4f\\n", s);
  return 0;
}
"""


def cfg_of(src, name="imp"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


class TestSyntheticMining:
    def test_independent_savings_split_by_threshold(self):
        # three queries buy cycles, two buy nothing; the bar separates
        # them exactly
        oracle = SyntheticCycleOracle(
            1000.0, {0: 100.0, 1: 50.0, 2: 5.0, 3: 0.0}, extra_safe=[4])
        r = mine_important(oracle, oracle.safe, threshold=20.0)
        assert sorted(r.important) == [0, 1]
        assert sorted(r.dropped) == [2, 3, 4]
        assert r.savings_by_query[0] == pytest.approx(100.0)
        assert r.savings_by_query[1] == pytest.approx(50.0)
        assert not r.partial

    def test_joint_group_found_via_context(self):
        # the 300-cycle bonus needs BOTH 2 and 5 kept: flipping either
        # singleton in a context containing the other costs the full
        # bonus, so both are important even with zero solo savings
        oracle = SyntheticCycleOracle(
            1000.0, {0: 50.0}, groups=[(frozenset({2, 5}), 300.0)])
        r = mine_important(oracle, oracle.safe, threshold=20.0)
        assert sorted(r.important) == [0, 2, 5]
        assert r.recovered_percent == pytest.approx(100.0)

    def test_redundant_queries_drop_together(self):
        # queries that never pay drop permanently in one group flip —
        # far fewer measurements than one flip per query
        oracle = SyntheticCycleOracle(
            1000.0, {0: 200.0}, extra_safe=range(1, 40))
        r = mine_important(oracle, oracle.safe, threshold=10.0)
        assert r.important == [0]
        assert len(r.dropped) == 39
        # 39 worthless queries must not cost 39 measurements: the halves
        # containing only them are dropped wholesale
        assert oracle.measurements < 25

    def test_pareto_front_is_cumulative(self):
        oracle = SyntheticCycleOracle(1000.0, {0: 100.0, 1: 60.0, 2: 30.0})
        r = mine_important(oracle, oracle.safe, threshold=10.0)
        assert [p.k for p in r.pareto] == [0, 1, 2, 3]
        assert r.pareto[0].cycles == pytest.approx(1000.0)
        # value-ordered: the best query is added first
        assert r.pareto[1].added == 0
        assert r.pareto[-1].cycles_saved == pytest.approx(190.0)
        assert r.pareto[-1].percent_of_full == pytest.approx(100.0)

    def test_no_savings_means_nothing_important(self):
        oracle = SyntheticCycleOracle(1000.0, {}, extra_safe=range(6))
        r = mine_important(oracle, oracle.safe, threshold=10.0)
        assert r.important == []
        assert r.recovered_percent == pytest.approx(100.0)

    def test_budget_exhaustion_yields_partial(self):
        oracle = SyntheticCycleOracle(
            1000.0, {i: 50.0 for i in range(12)}, max_measurements=6)
        r = mine_important(oracle, oracle.safe, threshold=10.0)
        # the oracle itself raises; mine_important degrades gracefully
        unseen = next(frozenset({i}) for i in range(12)
                      if frozenset({i}) not in oracle.distinct)
        with pytest.raises(MeasurementBudgetExhausted):
            oracle.measure(unseen)
        assert r.partial
        # everything learned before the budget ran out is kept
        assert len(r.important) <= 12
        assert r.baseline_cycles == pytest.approx(1000.0)

    def test_failed_flip_is_infinitely_costly(self):
        class VetoOracle(SyntheticCycleOracle):
            def measure(self, kept):
                m = super().measure(kept)
                # flipping query 1 "breaks verification"
                if 1 not in kept:
                    return Measurement(m.cycles, False, m.exe_hash)
                return m

        oracle = VetoOracle(1000.0, {0: 100.0, 1: 0.0, 2: 0.0})
        r = mine_important(oracle, oracle.safe, threshold=20.0)
        assert 1 in r.important
        assert math.isinf(r.savings_by_query[1])
        assert r.flip_failures > 0
        # required queries lead the value ordering
        assert r.by_value()[0] == 1

    def test_adaptive_bar_chases_recovery_target(self):
        # ten queries each worth 1% of baseline: all below a 2% bar,
        # but recover_percent=95 forces the refinement loop to lower
        # the bar until the target holds
        oracle = SyntheticCycleOracle(
            1000.0, {i: 10.0 for i in range(10)})
        r = mine_important(oracle, oracle.safe, threshold=20.0,
                           recover_percent=95.0)
        assert r.recovered_percent >= 95.0
        assert r.refinement_rounds > 0


@st.composite
def _savings_maps(draw):
    n = draw(st.integers(2, 24))
    payers = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return n, {i: 100.0 for i in payers}


class TestMiningProperties:
    @given(_savings_maps())
    @settings(max_examples=60, deadline=None)
    def test_independent_oracle_finds_exactly_the_payers(self, case):
        # additive oracle, bar below the per-query value: mining must
        # recover exactly the paying set, never a superset or subset
        n, savings = case
        oracle = SyntheticCycleOracle(10_000.0, savings,
                                      extra_safe=range(n))
        r = mine_important(oracle, range(n), threshold=50.0)
        assert sorted(r.important) == sorted(savings)
        assert r.recovered_percent == pytest.approx(100.0)
        # important ∪ dropped is a partition of the safe set
        assert sorted(r.important + r.dropped) == list(range(n))

    @given(_savings_maps())
    @settings(max_examples=30, deadline=None)
    def test_mining_is_deterministic(self, case):
        n, savings = case
        runs = []
        for _ in range(2):
            oracle = SyntheticCycleOracle(10_000.0, savings,
                                          extra_safe=range(n))
            r = mine_important(oracle, range(n), threshold=50.0)
            runs.append((r.important, r.dropped, r.savings_by_query,
                         [(p.k, p.added, p.cycles) for p in r.pareto],
                         oracle.measurements))
        assert runs[0] == runs[1]

    @given(st.sets(st.integers(0, 15), min_size=1, max_size=8),
           st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_joint_groups_always_recovered(self, group, bonus10):
        # a single all-or-nothing group: mining must keep the whole
        # group whenever its bonus clears the bar
        bonus = bonus10 * 10.0
        oracle = SyntheticCycleOracle(
            10_000.0, {}, groups=[(frozenset(group), bonus)],
            extra_safe=range(16))
        r = mine_important(oracle, range(16), threshold=min(bonus, 15.0))
        assert set(group) <= set(r.important)
        assert r.recovered_percent == pytest.approx(100.0)


class TestRealPipeline:
    def test_axpy_end_to_end(self):
        rep = ImportanceDriver(cfg_of(AXPY_SRC),
                               significant_percent=2.0).run()
        assert rep.total_savings > 0
        assert rep.important, "optimism pays here; something must matter"
        assert rep.recovered_percent >= 95.0
        # provenance: every important query is linked to its issuer
        for q in rep.important:
            assert q.issuing_pass != "?"
            assert q.function
        # cycle savings come from vectorization, which leaves a remark
        assert any(q.remarks for q in rep.important)
        assert not rep.partial
        # strict cost model: nothing was silently priced
        assert rep.unknown_opcodes == {}
        assert rep.unknown_intrinsics == {}
        text = render_importance_report(rep)
        assert "important queries by measured value" in text
        assert "Pareto front" in text

    def test_fresh_runs_are_bit_identical(self):
        a = ImportanceDriver(cfg_of(AXPY_SRC)).run()
        b = ImportanceDriver(cfg_of(AXPY_SRC)).run()
        assert [q.index for q in a.important] \
            == [q.index for q in b.important]
        assert a.baseline_cycles == b.baseline_cycles
        assert a.optimal_cycles == b.optimal_cycles
        assert [(p.k, p.added, p.cycles) for p in a.pareto] \
            == [(p.k, p.added, p.cycles) for p in b.pareto]
        assert a.compiles == b.compiles
        assert a.measurements_run == b.measurements_run

    def test_measurement_budget_partial_report(self):
        rep = ImportanceDriver(cfg_of(MULTI_SRC),
                               max_measurements=2).run()
        assert rep.partial
        # the phases that did complete are still reported
        assert rep.safe_queries > 0
        assert rep.baseline_cycles > 0
        assert "MEASUREMENT BUDGET EXHAUSTED" \
            in render_importance_report(rep)

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        cfg = cfg_of(MULTI_SRC)
        ref = ImportanceDriver(cfg).run()
        probing_tests = ref.probing.tests_run

        jdir = str(tmp_path / "journal")
        # the "test" fault site is polled once per probing test and once
        # per measurement; aiming past the probing count kills the
        # session mid-measurement
        kill_at = probing_tests + 2
        injector = FaultInjector([FaultSpec("session-kill", at=kill_at)])
        with pytest.raises(SessionKilled):
            ImportanceDriver(cfg, journal_dir=jdir,
                             injector=injector).run()

        rep = ImportanceDriver(cfg, journal_dir=jdir, resume=True).run()
        assert rep.measurements_replayed > 0
        assert [q.index for q in rep.important] \
            == [q.index for q in ref.important]
        assert rep.baseline_cycles == ref.baseline_cycles
        assert rep.optimal_cycles == ref.optimal_cycles
        assert [(p.k, p.added, p.cycles) for p in rep.pareto] \
            == [(p.k, p.added, p.cycles) for p in ref.pareto]
        # replayed measurements shift to the cache, never vanish
        assert rep.measurements_run + rep.measurements_cached \
            == ref.measurements_run + ref.measurements_cached
        assert rep.measurements_run < ref.measurements_run

    def test_measure_records_survive_in_journal(self, tmp_path):
        cfg = cfg_of(MULTI_SRC)
        jdir = str(tmp_path / "journal")
        ImportanceDriver(cfg, journal_dir=jdir).run()
        fp = config_fingerprint(cfg)
        path = (tmp_path / "journal"
                / f"{cfg.name}-{fp}-importance-chunked.journal.jsonl")
        j = SessionJournal(str(path), fp, "importance-chunked",
                           resume=True)
        assert j.measured, "cycle measurements must be journaled"
        assert j.completed
        for cycles, ok in j.measured.values():
            assert cycles > 0 and isinstance(ok, bool)

    def test_versions_table_golden(self, golden):
        # the deterministic VM makes cycle counts golden-safe; any
        # drift in the measurement path shows up as a diff here
        from repro.experiments import render_fig5_importance
        rep = ImportanceDriver(cfg_of(MULTI_SRC)).run()
        golden("importance_versions.txt", render_fig5_importance(rep))
        golden("importance_report.txt", render_importance_report(rep))

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ImportanceDriver(cfg_of(AXPY_SRC), significant_percent=-1)
        with pytest.raises(ValueError):
            ImportanceDriver(cfg_of(AXPY_SRC), recover_percent=0)


class TestImportanceCLI:
    def test_cli_smoke(self, tmp_path, capsys):
        from repro.oraql.cli import main
        cfg_path = tmp_path / "axpy.json"
        cfg_path.write_text(cfg_of(AXPY_SRC).to_json())
        rc = main(["importance", "--config", str(cfg_path),
                   "--significant-percent", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ORAQL importance report" in out
        assert "important queries by measured value" in out

    def test_cli_resume_requires_journal(self):
        from repro.oraql.cli import main
        with pytest.raises(SystemExit):
            main(["importance", "--workload", "whatever", "--resume"])
