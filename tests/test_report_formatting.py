"""Unit tests for the ORAQL report renderer (paper §II / Fig. 3)."""

from repro.analysis.memloc import LocationSize, MemoryLocation
from repro.ir.types import I64, PointerType
from repro.ir.values import Value
from repro.oraql.driver import ProbingReport
from repro.oraql.pass_ import QueryRecord
from repro.oraql.report import (
    render_pessimistic_dump,
    render_query,
    render_report,
)
from repro.oraql.sequence import DecisionSequence


def _report(**kw):
    base = dict(config_name="bench-O3",
                fully_optimistic=False,
                final_sequence=DecisionSequence([1, 0, 1]),
                pessimistic_indices=[1],
                opt_unique=2, opt_cached=5,
                pess_unique=1, pess_cached=3,
                no_alias_original=10, no_alias_oraql=12)
    base.update(kw)
    return ProbingReport(**base)


def _record(index=3, optimistic=False, cached=False):
    ptr_ty = PointerType(I64)
    a = MemoryLocation(Value(ptr_ty, "p"), LocationSize.precise_(8))
    b = MemoryLocation(Value(ptr_ty, "q"), LocationSize.precise_(8))
    return QueryRecord(index=index, optimistic=optimistic, cached=cached,
                       cache_hits=0, a=a, b=b, scope="main",
                       issuing_pass="licm")


class TestRenderReport:
    def test_header_names_the_configuration(self):
        assert render_report(_report()).splitlines()[0] \
            == "== ORAQL report: bench-O3 =="

    def test_query_counts_and_delta(self):
        text = render_report(_report())
        assert "optimistic queries : 2 unique, 5 cached" in text
        assert "pessimistic queries: 1 unique, 3 cached" in text
        assert "10 original -> 12 ORAQL (+20.0%)" in text

    def test_negative_delta_keeps_explicit_sign(self):
        text = render_report(_report(no_alias_original=10, no_alias_oraql=9))
        assert "(-10.0%)" in text

    def test_fully_optimistic_banner(self):
        assert "fully optimistic" in render_report(
            _report(fully_optimistic=True))
        assert "fully optimistic" not in render_report(_report())

    def test_budget_exhausted_warning(self):
        assert "BUDGET EXHAUSTED" in render_report(
            _report(budget_exhausted=True))
        assert "BUDGET EXHAUSTED" not in render_report(_report())

    def test_verdict_cache_line_only_when_cache_was_used(self):
        assert "verdict cache" not in render_report(_report())
        assert "verdict cache      : 4 hits, 2 misses" in render_report(
            _report(cache_hits=4, cache_misses=2))

    def test_speculation_line_only_when_speculating(self):
        assert "speculation" not in render_report(_report())
        assert "3 probes" in render_report(_report(tests_speculated=3))

    def test_analysis_rebuilds_and_preserved_hits(self):
        text = render_report(_report(
            analysis_builds={"AliasAnalysis": 7, "LoopInfo": 2},
            analysis_preserved_hits={"LoopInfo": 5}))
        assert "analysis rebuilds  : AliasAnalysis 7, LoopInfo 2" in text
        assert "rebuilds avoided   : LoopInfo 5" in text

    def test_unique_by_pass_sorted_by_count_with_percentages(self):
        text = render_report(_report(
            unique_by_pass={"licm": 1, "gvn": 3}))
        lines = [l for l in text.splitlines() if l.startswith("  ")]
        assert lines[0].split() == ["gvn", "3", "(75.0%)"]
        assert lines[1].split() == ["licm", "1", "(25.0%)"]


class TestPessimisticDump:
    def test_render_query_is_the_joined_record(self):
        rec = _record()
        assert render_query(rec) == "\n".join(rec.render())
        assert render_query(rec).startswith(
            "[ORAQL] Pessimistic query [Cached 0]")

    def test_live_records_are_rendered_with_issuing_pass(self):
        report = _report(pessimistic_records=[_record()])
        dump = render_pessimistic_dump(report)
        assert "Executing Pass 'licm' on Function 'main'..." in dump
        assert "[ORAQL] Scope: main" in dump
        text = render_report(report)
        assert "pessimistic queries (true aliases):" in text
        assert dump in text

    def test_detached_transport_uses_prerendered_dump(self):
        report = _report(pessimistic_records=[],
                         pessimistic_dump="PRE-RENDERED IN WORKER")
        assert render_pessimistic_dump(report) == "PRE-RENDERED IN WORKER"
        assert "PRE-RENDERED IN WORKER" in render_report(report)

    def test_no_dump_section_without_records(self):
        assert "true aliases" not in render_report(_report())
