"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.ir import F64, FunctionType, I64, IRBuilder, Module, ptr


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def simple_fn(module):
    """A function double f(double* a, double* b, i64 n) with an entry
    block and a builder positioned in it."""
    fn = module.add_function(
        FunctionType(F64, [ptr(F64), ptr(F64), I64]), "f", ["a", "b", "n"])
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    return fn, b
