"""Shared pytest fixtures and the golden-file machinery."""

from __future__ import annotations

import os

import pytest

from repro.ir import F64, FunctionType, I64, IRBuilder, Module, ptr

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/* with the currently rendered output "
             "instead of comparing against it")


@pytest.fixture
def golden(request):
    """Compare rendered text against ``tests/goldens/<name>``.

    ``pytest --update-goldens`` rewrites the files instead; review the
    diff like any other code change.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, text: str) -> None:
        path = os.path.join(GOLDEN_DIR, name)
        if not text.endswith("\n"):
            text += "\n"
        if update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w") as f:
                f.write(text)
            return
        assert os.path.exists(path), (
            f"golden file {name} missing — run "
            f"'pytest --update-goldens' to create it")
        with open(path) as f:
            expected = f.read()
        assert text == expected, (
            f"rendered output does not match goldens/{name}; if the "
            f"change is intended, re-run with --update-goldens and "
            f"review the diff")

    return check


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def simple_fn(module):
    """A function double f(double* a, double* b, i64 n) with an entry
    block and a builder positioned in it."""
    fn = module.add_function(
        FunctionType(F64, [ptr(F64), ptr(F64), I64]), "f", ["a", "b", "n"])
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    return fn, b
