"""Property tests for the strategy contract (base.py docstring).

Every registered strategy is driven against a scripted monotone oracle
— a hidden dangerous set D where a probe passes iff no index of D is
answered optimistically — and held to the contract:

* **convergence** — the returned pessimistic set is exactly D (the
  chunked reference answer on a monotone oracle);
* **determinism** — the same (seed, verdicts) replays the same probe
  sequence bit for bit, which is what makes journal ``--resume`` work
  unchanged for every strategy (the real kill-and-resume check lives in
  tests/test_journal.py);
* **progress** — pinned grows and candidates shrinks monotonically
  within one epoch;
* **no repeats** — no two probes of a session carry the same bits
  (frequency is exempt: a residue-class split can re-propose a block's
  bits verbatim, which the driver serves from the verdict cache for
  free — asserted as such).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oraql import DecisionSequence, TestOutcome
from repro.oraql.strategies import create_strategy, strategy_names

#: strategies whose probe streams never repeat a bit pattern
NO_REPEAT = [n for n in strategy_names() if n != "frequency"]


def drive(name, n, dangerous, seed=0, trace=None):
    """Run one strategy against the scripted oracle; returns
    (result set, probe bit-tuples in order)."""
    strat = create_strategy(name, seed=seed)
    # the driver only starts a strategy after the all-optimistic
    # attempt failed, so the oracle needs a non-empty dangerous set
    assert dangerous
    strat.start(StrategyContextFor(n))
    probes = []
    while not strat.done():
        probe = strat.propose()
        bits = probe.sequence.bits
        ok = not any((bits[i] if i < len(bits) else 1) and i in dangerous
                     for i in range(n))
        probes.append(tuple(bits))
        if trace is not None:
            trace.append((strat.epoch, strat.pinned(),
                          strat.candidates()))
        strat.observe(probe, TestOutcome(ok, n, f"exe:{bits}"))
    return strat.result(), probes


def StrategyContextFor(n):
    from repro.oraql.strategies.base import StrategyContext
    return StrategyContext(first=TestOutcome(False, n, "exe:first"))


def danger_sets(max_n=40):
    """(n, dangerous) with dangerous a non-empty subset of range(n)."""
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.sets(st.integers(min_value=0, max_value=n - 1),
                          min_size=1).map(lambda d: (n, d)))


class TestConvergence:
    @settings(max_examples=40, deadline=None)
    @given(case=danger_sets())
    def test_every_strategy_finds_the_reference_set(self, case):
        n, dangerous = case
        for name in strategy_names():
            found, _probes = drive(name, n, dangerous)
            assert found == dangerous, name


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(case=danger_sets(), seed=st.integers(0, 1000))
    def test_same_seed_same_probe_stream(self, case, seed):
        n, dangerous = case
        for name in strategy_names():
            _, probes_a = drive(name, n, dangerous, seed=seed)
            _, probes_b = drive(name, n, dangerous, seed=seed)
            assert probes_a == probes_b, name


class TestProgress:
    @settings(max_examples=25, deadline=None)
    @given(case=danger_sets())
    def test_pinned_grows_candidates_shrink_within_epoch(self, case):
        n, dangerous = case
        for name in strategy_names():
            trace = []
            drive(name, n, dangerous, trace=trace)
            for (e0, p0, c0), (e1, p1, c1) in zip(trace, trace[1:]):
                if e0 != e1:
                    continue  # fallback/restart resets the invariants
                assert p0 <= p1, (name, "pinned must grow")
                # candidates shrink; the only growth is the first
                # failing outcome populating the empty initial universe
                assert c1 <= c0 or not c0, (name, "candidates must shrink")


class TestNoRepeats:
    @settings(max_examples=40, deadline=None)
    @given(case=danger_sets())
    def test_no_strategy_repeats_a_probe(self, case):
        n, dangerous = case
        for name in NO_REPEAT:
            _, probes = drive(name, n, dangerous)
            assert len(probes) == len(set(probes)), name

    @settings(max_examples=40, deadline=None)
    @given(case=danger_sets())
    def test_frequency_repeats_are_verbatim_cache_hits(self, case):
        """Frequency may re-propose a bit pattern (a class split whose
        residue indices all land in one child re-tests the parent's
        block) — every repeat must be bit-verbatim, so the driver's
        executable-hash verdict cache serves it without a compile."""
        n, dangerous = case
        _, probes = drive("frequency", n, dangerous)
        seen = {}
        for i, p in enumerate(probes):
            if p in seen:
                assert probes[seen[p]] == p  # verbatim by construction
            else:
                seen[p] = i


class TestEdgeCases:
    def test_all_dangerous(self):
        for name in strategy_names():
            found, _ = drive(name, 6, set(range(6)))
            assert found == set(range(6)), name

    def test_single_query_universe(self):
        for name in strategy_names():
            found, _ = drive(name, 1, {0})
            assert found == {0}, name

    def test_last_index_only(self):
        for name in strategy_names():
            found, _ = drive(name, 32, {31})
            assert found == {31}, name
