"""Unit tests for the IR type system: sizes, layout, interning."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VectorType,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ptr,
)


class TestScalarTypes:
    def test_int_sizes(self):
        assert I8.size() == 1
        assert I16.size() == 2
        assert I32.size() == 4
        assert I64.size() == 8
        assert I1.size() == 1

    def test_float_sizes(self):
        assert F32.size() == 4
        assert F64.size() == 8

    def test_pointer_size(self):
        assert ptr(F64).size() == 8
        assert ptr(ptr(I8)).size() == 8

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size()

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            FloatType(16)

    def test_scalar_equality(self):
        assert IntType(64) == I64
        assert FloatType(32) == F32
        assert I64 != I32
        assert I64 != F64

    def test_predicates(self):
        assert I64.is_integer and not I64.is_float
        assert F64.is_float and not F64.is_pointer
        assert ptr(I8).is_pointer
        assert VOID.is_void
        assert ArrayType(F64, 3).is_aggregate
        assert VectorType(F64, 4).is_vector


class TestAggregates:
    def test_array_size(self):
        assert ArrayType(F64, 10).size() == 80
        assert ArrayType(I8, 3).size() == 3
        assert ArrayType(ArrayType(F64, 4), 2).size() == 64

    def test_vector(self):
        v = VectorType(F64, 4)
        assert v.size() == 32
        assert v.element == F64
        with pytest.raises(ValueError):
            VectorType(ArrayType(F64, 2), 4)

    def test_struct_layout_natural_alignment(self):
        # { i8, i64 } pads the first field to 8
        st_ = StructType("s", [I8, I64])
        assert st_.field_offset(0) == 0
        assert st_.field_offset(1) == 8
        assert st_.size() == 16

    def test_struct_trailing_padding(self):
        st_ = StructType("s", [I64, I8])
        assert st_.size() == 16  # padded to alignment 8

    def test_struct_field_lookup(self):
        st_ = StructType("pt", [F64, F64], ["x", "y"])
        assert st_.field_index("y") == 1
        with pytest.raises(KeyError):
            st_.field_index("z")

    def test_named_struct_equality_is_nominal(self):
        a = StructType("same", [I64])
        b = StructType("same", [F64, F64])
        assert a == b  # by name, like linked identified structs

    def test_anonymous_struct_equality_is_structural(self):
        a = StructType("", [I64, F64])
        b = StructType("", [I64, F64])
        c = StructType("", [F64])
        assert a == b
        assert a != c


class TestPointerInterning:
    def test_scalar_pointers_interned(self):
        assert ptr(F64) is ptr(F64)
        assert ptr(ptr(I64)) is ptr(ptr(I64))

    def test_struct_pointers_interned_by_identity(self):
        """Regression: two same-named structs from different modules must
        get *distinct* pointer types (the omp.ctx collision bug)."""
        a = StructType("omp.ctx.main.0", [ptr(F64)])
        b = StructType("omp.ctx.main.0", [ptr(F64), ptr(I64), I64])
        pa, pb = ptr(a), ptr(b)
        assert pa.pointee is a
        assert pb.pointee is b
        assert pa is not pb

    def test_pointer_to_struct_pointer_not_cross_wired(self):
        a = StructType("S", [I64])
        b = StructType("S", [F64, F64, F64])
        ppa = ptr(ptr(a))
        ppb = ptr(ptr(b))
        assert ppa.pointee.pointee is a
        assert ppb.pointee.pointee is b

    def test_array_of_struct_pointer_not_interned(self):
        a = StructType("T", [I64])
        b = StructType("T", [I64, I64])
        pa = ptr(ArrayType(a, 2))
        pb = ptr(ArrayType(b, 2))
        assert pa.pointee.element is a
        assert pb.pointee.element is b


class TestFunctionType:
    def test_str(self):
        ft = FunctionType(F64, [ptr(F64), I64])
        assert str(ft) == "double (double*, i64)"

    def test_vararg(self):
        ft = FunctionType(VOID, [ptr(I8)], vararg=True)
        assert "..." in str(ft)

    def test_equality(self):
        assert FunctionType(VOID, [I64]) == FunctionType(VOID, [I64])
        assert FunctionType(VOID, [I64]) != FunctionType(VOID, [I32])


@given(st.integers(min_value=1, max_value=128))
def test_int_type_size_covers_bits(bits):
    t = IntType(bits)
    assert t.size() * 8 >= bits
    assert t.align() <= 8


@given(st.integers(min_value=0, max_value=64),
       st.integers(min_value=1, max_value=16))
def test_array_size_is_linear(count, esize):
    elem = IntType(esize * 8) if esize <= 8 else ArrayType(I8, esize)
    arr = ArrayType(elem, count)
    assert arr.size() == count * elem.size()
