"""Tests for memcpy/memset handling and compilation determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir import (
    ArrayType,
    F64,
    FunctionType,
    I64,
    IRBuilder,
    MemCpyInst,
    Module,
    VOID,
    module_hash,
    ptr,
    verify_module,
)
from repro.passes import CompilationContext, PassManager, build_pipeline, parse_pipeline
from repro.vm import Machine

from helpers import run_main


def run_passes(module, spec):
    ctx = CompilationContext(module, verify_each=True)
    PassManager(ctx).run(parse_pipeline(spec))
    verify_module(module)
    return ctx


class TestMemCpySemantics:
    def _module_with_copy(self):
        m = Module("mc")
        fn = m.add_function(FunctionType(F64, []), "main")
        b = IRBuilder(fn.add_block("e"))
        src = b.alloca(ArrayType(F64, 4), name="src")
        dst = b.alloca(ArrayType(F64, 4), name="dst")
        for i in range(4):
            b.store(b.f64(i + 0.5), b.gep(src, [0, i]))
        b.memcpy(b.gep(dst, [0, 0]), b.gep(src, [0, 0]), 32)
        v = b.load(b.gep(dst, [0, 3]))
        b.ret(v)
        return m, fn

    def test_interpreter_memcpy(self):
        m, _ = self._module_with_copy()
        mach = Machine(m)
        mach.start("main")
        mach.run_to_completion()
        assert mach.state == "done"
        assert mach.retval == 3.5

    def test_memset_zeroes(self):
        m = Module("ms")
        fn = m.add_function(FunctionType(F64, []), "main")
        b = IRBuilder(fn.add_block("e"))
        buf = b.alloca(ArrayType(F64, 4), name="buf")
        b.store(b.f64(9.0), b.gep(buf, [0, 2]))
        b.memset(b.gep(buf, [0, 0]), 0, 32)
        b.ret(b.load(b.gep(buf, [0, 2])))
        mach = Machine(m)
        mach.start("main")
        mach.run_to_completion()
        assert mach.retval == 0.0

    def test_memcpy_chain_forwarding(self):
        """memcpy a->b; memcpy b->c  =>  the second reads from a."""
        m = Module("fw")
        fn = m.add_function(
            FunctionType(VOID, [ptr(F64), ptr(F64), ptr(F64)]), "f",
            ["a", "b", "c"])
        b = IRBuilder(fn.add_block("e"))
        c1 = b.memcpy(fn.args[1], fn.args[0], 16)
        c2 = b.memcpy(fn.args[2], fn.args[1], 16)
        b.ret()
        ctx = run_passes(m, "memcpyopt")
        assert ctx.stats.get("MemCpy Optimization", "# memcpys forwarded") == 1
        assert c2.src is fn.args[0]

    def test_self_copy_deleted(self):
        m = Module("sc")
        fn = m.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        b.memcpy(fn.args[0], fn.args[0], 16)
        b.ret()
        ctx = run_passes(m, "memcpyopt")
        assert not any(isinstance(i, MemCpyInst) for i in fn.instructions())

    def test_intervening_clobber_blocks_forwarding(self):
        m = Module("cl")
        fn = m.add_function(
            FunctionType(VOID, [ptr(F64), ptr(F64), ptr(F64), ptr(F64)]),
            "f", ["a", "b", "c", "w"])
        b = IRBuilder(fn.add_block("e"))
        b.memcpy(fn.args[1], fn.args[0], 16)
        b.store(b.f64(1.0), fn.args[3])   # w may alias a or b
        c2 = b.memcpy(fn.args[2], fn.args[1], 16)
        b.ret()
        run_passes(m, "memcpyopt")
        assert c2.src is fn.args[1]       # unchanged


DET_SRC = """
void kernel(double* out, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    double t = a[i] * 0.5;
    if (t > b[i]) { out[i] = t - b[i]; }
    else { out[i] = b[i] - t; }
  }
}
int main() {
  double a[24]; double b[24]; double o[24];
  for (int i = 0; i < 24; i++) { a[i] = i; b[i] = 24.0 - i; o[i] = 0.0; }
  kernel(o, a, b, 24);
  double s = 0.0;
  for (int i = 0; i < 24; i++) { s = s + o[i]; }
  printf("%.4f\\n", s);
  return 0;
}
"""


class TestDeterminism:
    def _hash_once(self, level):
        m = compile_source(DET_SRC, "d.c")
        ctx = CompilationContext(m)
        PassManager(ctx).run(build_pipeline(level))
        return module_hash(m)

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_same_input_same_module_hash(self, level):
        assert self._hash_once(level) == self._hash_once(level)

    def test_printed_module_is_reproducible(self):
        from repro.ir import print_module
        m1 = compile_source(DET_SRC, "d.c")
        m2 = compile_source(DET_SRC, "d.c")
        for m in (m1, m2):
            ctx = CompilationContext(m)
            PassManager(ctx).run(build_pipeline(3))
        assert print_module(m1) == print_module(m2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 3))
    def test_random_sized_programs_deterministic(self, n, extra):
        src = DET_SRC.replace("24", str(n + 12))
        h = {self._hash_once(3) for _ in range(2)}
        m1 = compile_source(src, "d.c")
        m2 = compile_source(src, "d.c")
        for m in (m1, m2):
            ctx = CompilationContext(m)
            PassManager(ctx).run(build_pipeline(3))
        assert module_hash(m1) == module_hash(m2)


class TestInlinerDifferential:
    """The inliner must preserve observable behaviour on the corpus."""

    @pytest.mark.parametrize("src_key", ["calls", "loops", "restrict"])
    def test_inline_pipeline_matches(self, src_key):
        sources = {
            "calls": """
            double f(double x) { return x * 2.0 + 1.0; }
            double g(double x) { return f(x) + f(x + 1.0); }
            int main() { printf("%.1f\\n", g(3.0)); return 0; }
            """,
            "loops": """
            double total(double* a, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) { s = s + a[i]; }
              return s;
            }
            int main() {
              double v[9];
              for (int i = 0; i < 9; i++) { v[i] = i * 1.5; }
              printf("%.1f\\n", total(v, 9) + total(v + 3, 3));
              return 0;
            }
            """,
            "restrict": """
            void axpy(double* restrict y, double* restrict x, int n) {
              for (int i = 0; i < n; i++) { y[i] = y[i] + 2.0 * x[i]; }
            }
            int main() {
              double x[8]; double y[8];
              for (int i = 0; i < 8; i++) { x[i] = i; y[i] = 1.0; }
              axpy(y, x, 8);
              printf("%.1f\\n", y[7]);
              return 0;
            }
            """,
        }
        src = sources[src_key]
        m0 = compile_source(src)
        base = run_main(m0).output()
        m1 = compile_source(src)
        ctx = run_passes(
            m1, "simplifycfg,inline,mem2reg,instcombine,simplifycfg,"
                "early-cse,licm,gvn,dse,loop-vectorize,instcombine,dce,"
                "simplifycfg,dce")
        assert run_main(m1).output() == base
