"""Tests for the parallel engine's resilience contract: dying workers
are detected and their configurations requeued; failed speculations are
recorded into the report (never silently dropped) and recomputed
in-process; results under worker loss stay bit-identical to fault-free
runs."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.faults.injector import FaultInjector, FaultSpec
from repro.oraql import (
    BenchmarkConfig,
    ParallelProbingDriver,
    ProbingDriver,
    SourceFile,
    SpeculativeProbingDriver,
)

# wide enough that the chunked binary search actually offers
# speculative branches (mirrors tests/test_oraql_parallel.py)
WIDE_HAZARD_SRC = """
void sweep(double* a, double* b, double* c, double* d, double* e,
           double* f, int n) {
  for (int i = 0; i < n; i++) { a[i] = b[i] + 1.0; }
  for (int i = 0; i < n; i++) { c[i] = d[i] + a[i]; }
  for (int i = 0; i < n; i++) { e[i] = f[i] + c[i]; }
  for (int i = 0; i < n; i++) { b[i] = e[i] * 0.5; }
}
void shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double p[16]; double q[16]; double r[16];
  double s[16]; double t[16]; double u[16];
  double buf[64];
  for (int i = 0; i < 16; i++) {
    p[i] = i; q[i] = 2.0 * i; r[i] = 0.0;
    s[i] = 3.0 * i; t[i] = 0.0; u[i] = 1.0;
  }
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  sweep(p, q, r, s, t, u, 16);
  shift(buf + 1, buf, 60);
  double acc = 0.0;
  for (int i = 0; i < 16; i++) { acc = acc + p[i] + r[i] + t[i]; }
  for (int i = 0; i < 64; i++) { acc = acc + buf[i] * i; }
  printf("acc = %.6f\\n", acc);
  return 0;
}
"""

SAFE_SRC = """
int main() {
  double x[8];
  for (int i = 0; i < 8; i++) { x[i] = i * 2.0; }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s = s + x[i]; }
  printf("sum = %.1f\\n", s);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


class RaisingPool:
    """A fake worker pool whose speculations fail in a scripted way."""

    def __init__(self, exc_factory):
        self.exc_factory = exc_factory
        self.submits = 0

    def submit(self, fn, *args, **kwargs):
        self.submits += 1
        f = Future()
        f.set_exception(self.exc_factory())
        return f

    def shutdown(self, wait=True):
        pass


class TestSpeculativeResilience:
    def test_worker_exception_recorded_and_recomputed(self):
        # the satellite fix: a speculation that raises must land in the
        # report, and the probe must be recomputed in-process
        cfg = cfg_of(WIDE_HAZARD_SRC)
        ref = ProbingDriver(cfg).run()
        pool = RaisingPool(lambda: RuntimeError("worker blew up"))
        rep = SpeculativeProbingDriver(cfg, pool).run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert pool.submits > 0
        assert any("worker blew up" in e for e in rep.worker_errors)
        assert rep.triage_counts.get("worker-lost", 0) >= 1

    def test_broken_pool_disables_speculation(self):
        cfg = cfg_of(WIDE_HAZARD_SRC)
        ref = ProbingDriver(cfg).run()
        pool = RaisingPool(lambda: BrokenProcessPool("pool died"))
        rep = SpeculativeProbingDriver(cfg, pool).run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert any("speculation disabled" in e for e in rep.worker_errors)

    def test_broken_pool_respawned_via_factory(self):
        cfg = cfg_of(WIDE_HAZARD_SRC)
        ref = ProbingDriver(cfg).run()
        pool = RaisingPool(lambda: BrokenProcessPool("pool died"))
        respawned = []

        def factory():
            p = RaisingPool(lambda: BrokenProcessPool("pool died again"))
            respawned.append(p)
            return p

        rep = SpeculativeProbingDriver(cfg, pool,
                                       pool_factory=factory).run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert respawned  # the factory was actually used
        assert any("respawned" in e for e in rep.worker_errors)

    def test_submit_failure_recorded(self):
        class SubmitBomb(RaisingPool):
            def submit(self, fn, *a, **k):
                self.submits += 1
                raise BrokenProcessPool("cannot even submit")

        cfg = cfg_of(WIDE_HAZARD_SRC)
        ref = ProbingDriver(cfg).run()
        rep = SpeculativeProbingDriver(
            cfg, SubmitBomb(lambda: None)).run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert any("submit failed" in e for e in rep.worker_errors)


class TestFanoutResilience:
    def test_worker_kill_requeues_and_completes(self, tmp_path):
        # plant a hard worker kill (os._exit) in the first attempt of
        # every worker; the engine must detect the broken pool, requeue,
        # and still produce reports identical to a fault-free fan-out
        configs = [cfg_of(WIDE_HAZARD_SRC, "hazard"),
                   cfg_of(SAFE_SRC, "safe")]
        refs = {c.name: ProbingDriver(c).run() for c in configs}
        plan = FaultInjector([FaultSpec("worker-kill",
                                        at=1)]).to_json_plan()
        reports = ParallelProbingDriver(
            configs, jobs=2, journal_dir=str(tmp_path / "journal"),
            fault_plan=plan).run()
        assert len(reports) == 2
        for rep in reports:
            assert not rep.failed, rep.error
            ref = refs[rep.config_name]
            assert rep.pessimistic_indices == ref.pessimistic_indices
            assert rep.fully_optimistic == ref.fully_optimistic
        # the hazard config reaches probe #1, dies, and is requeued (the
        # fully optimistic safe config never reaches the kill site)
        hazard = next(r for r in reports if r.config_name == "hazard")
        assert any("requeued" in e for e in hazard.worker_errors)

    def test_unrecoverable_config_reported_not_dropped(self, tmp_path):
        # a worker that dies on every attempt exhausts the retry budget:
        # its config must come back as a failed report while the healthy
        # config's results survive
        configs = [cfg_of(WIDE_HAZARD_SRC, "hazard"),
                   cfg_of(SAFE_SRC, "safe")]
        plan = FaultInjector([
            FaultSpec("worker-kill", at=1, attempt=a)
            for a in range(6)]).to_json_plan()
        reports = ParallelProbingDriver(
            configs, jobs=2, journal_dir=str(tmp_path / "journal"),
            fault_plan=plan).run()
        assert len(reports) == 2
        by_name = {r.config_name: r for r in reports}
        assert by_name["hazard"].failed
        assert "worker lost" in by_name["hazard"].error
        assert by_name["hazard"].triage_counts.get("worker-lost") == 1
        assert not by_name["safe"].failed
