"""Tests for the differential oracle: the config matrix, finding
classification, and the bisection hand-off to the probing driver."""

import pytest

from repro.fuzz.generator import GeneratorOptions, generate_program
from repro.fuzz.oracle import (
    MUST_MATCH,
    DifferentialOracle,
    OracleFinding,
    _first_diff,
    base_config,
)
from repro.oraql.cache import VerdictCache


SIMPLE = """\
double buf[8];

int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    buf[i] = i * 2.0;
  }
  double acc = 0.0;
  for (i = 0; i < 8; i = i + 1) {
    acc = acc + buf[i];
  }
  printf("%f\\n", acc);
  return 0;
}
"""

BROKEN = """\
int main() {
  int i = 1;
  while (i > 0) { i = i + 1; }
  return 0;
}
"""


class TestMatrix:
    def test_clean_program_matches_everywhere(self):
        res = DifferentialOracle().check(0, SIMPLE)
        assert res.clean
        assert res.reference_output == "56.000000\n"
        for key in ("o0",) + MUST_MATCH:
            assert res.outcomes[key] == "match", key
        # 7 matrix compiles (o0, o2, o3, coarse, override, optimistic,
        # pessimistic) plus 3 incremental-vs-full pairs (all-pessimistic,
        # flip-first, flip-last — SIMPLE has one unique query)
        assert res.compiles == 13
        assert res.incremental_fallbacks == 0

    def test_optimistic_key_is_not_must_match(self):
        assert "optimistic" not in MUST_MATCH
        assert "o0" not in MUST_MATCH

    def test_reference_failure_short_circuits(self):
        res = DifferentialOracle().check(1, BROKEN)
        assert not res.clean
        assert res.findings[0].kind == "reference-failure"
        assert res.outcomes == {"o0": "trapped"}
        assert res.compiles == 1  # nothing else ran

    def test_base_config_embeds_seed_and_source(self):
        cfg = base_config(42, SIMPLE, opt_level=2)
        assert cfg.name == "fuzz-42"
        assert cfg.opt_level == 2
        assert cfg.sources[0].text == SIMPLE


class TestHazardBisection:
    @pytest.fixture(scope="class")
    def hazard_result(self):
        prog = generate_program(1, GeneratorOptions(hazard=True))
        return DifferentialOracle().check(1, prog.source)

    def test_injected_hazard_diverges_and_is_caught(self, hazard_result):
        res = hazard_result
        assert res.optimism_divergent
        assert res.outcomes["optimistic"] in ("divergent", "trapped")
        # caught: a non-empty pessimistic set explains the divergence,
        # so it is NOT a finding
        assert res.pessimistic_indices
        assert res.clean

    def test_pessimistic_build_still_matches(self, hazard_result):
        assert hazard_result.outcomes["pessimistic"] == "match"

    def test_bisection_can_be_disabled(self):
        prog = generate_program(1, GeneratorOptions(hazard=True))
        res = DifferentialOracle().check(
            1, prog.source, bisect_divergence=False)
        assert res.optimism_divergent
        assert not res.pessimistic_indices
        assert res.clean  # no verdict attempted, no finding

    def test_verdict_cache_is_seeded_for_the_driver(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        prog = generate_program(1, GeneratorOptions(hazard=True))
        res = DifferentialOracle(verdict_cache=cache).check(1, prog.source)
        assert res.clean and res.pessimistic_indices
        # the driver's empty-sequence attempt hit the pre-seeded verdict
        assert res.cache_hits >= 1


class TestFirstDiff:
    def test_pinpoints_the_byte(self):
        msg = _first_diff("aaaa bbbb\n", "aaaa cbbb\n")
        assert "first diff at byte 5" in msg

    def test_length_only_difference(self):
        assert _first_diff("ab", "abc") == "length 2 vs 3"

    def test_finding_is_a_plain_record(self):
        f = OracleFinding("miscompile", "o3", "boom")
        assert (f.kind, f.config_key, f.detail) == ("miscompile", "o3", "boom")
