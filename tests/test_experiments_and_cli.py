"""Tests for the experiment harness, report rendering, and the CLI."""

import json

import pytest

from repro.experiments import (
    SyntheticOracle,
    pct,
    probe_chunked,
    probe_frequency,
    render_fig2,
    render_fig5,
    render_table,
    run_fig2,
)
from repro.oraql import (
    BenchmarkConfig,
    DecisionSequence,
    ProbingDriver,
    SourceFile,
    render_pessimistic_dump,
    render_report,
)
from repro.oraql.cli import build_parser, main


class TestTables:
    def test_render_table_alignment(self):
        t = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_pct(self):
        assert pct(110, 100) == "+10.0%"
        assert pct(90, 100) == "-10.0%"
        assert pct(5, 0) == "n/a"


class TestSyntheticProbing:
    def test_oracle_counts_tests(self):
        oc = SyntheticOracle(16, {3})
        assert not oc.test(DecisionSequence([1] * 16))
        assert oc.test(DecisionSequence([1, 1, 1, 0]))
        assert oc.tests == 2

    @pytest.mark.parametrize("dangerous", [
        set(), {0}, {15}, {3, 4, 5}, {0, 8, 15},
    ])
    def test_both_strategies_exact(self, dangerous):
        for probe in (probe_chunked, probe_frequency):
            oc = SyntheticOracle(16, set(dangerous))
            assert probe(oc) == dangerous

    def test_chunked_cheaper_than_exhaustive(self):
        oc = SyntheticOracle(512, {100, 101, 102, 103})
        found = probe_chunked(oc)
        assert found == {100, 101, 102, 103}
        assert oc.tests < 512 // 2

    def test_fig2_rows_complete(self):
        rows = run_fig2(64)
        assert len(rows) == 5
        text = render_fig2(rows)
        assert "clustered" in text


class TestFig2DriverParity:
    """The Fig. 2 synthetic strategies claim to be 'the driver's
    strategy against the synthetic oracle' — pin that down: the real
    ``ProbingDriver`` bisection, probing the same shared oracle, must
    find the same dangerous set with the same test sequence (the deque
    worklist fix must not reorder the frequency-space exploration)."""

    def _driver_on(self, oracle, strategy):
        from repro.oraql import TestOutcome
        cfg = BenchmarkConfig(
            name="parity",
            sources=[SourceFile("t.c", "int main() { return 0; }")])
        driver = ProbingDriver(cfg, strategy=strategy)
        probes = []

        def fake_test(seq):
            probes.append(tuple(seq.bits[i] if i < len(seq.bits) else 1
                                for i in range(oracle.n)))
            return TestOutcome(oracle.test(seq), oracle.n,
                               f"exe:{probes[-1]}")

        driver._test = fake_test
        # the failed all-optimistic attempt the driver would have seen
        first = TestOutcome(False, oracle.n, "exe:first")
        found = driver._probe(first)
        return found, probes

    @pytest.mark.parametrize("dangerous", [
        set(), {0}, {15}, {3, 4, 5}, {0, 8, 15}, {7, 8, 9, 10},
    ])
    def test_chunked_parity(self, dangerous):
        synth = SyntheticOracle(16, set(dangerous))
        assert probe_chunked(synth) == dangerous
        shared = SyntheticOracle(16, set(dangerous))
        found, probes = self._driver_on(shared, "chunked")
        assert found == dangerous
        # same exploration, probe for probe (modulo the pessimistic
        # tail padding, which the oracle truncates away)
        assert len(probes) == synth.tests

    @pytest.mark.parametrize("dangerous", [
        set(), {0}, {15}, {3, 4, 5}, {0, 8, 15}, {7, 8, 9, 10},
    ])
    def test_frequency_parity(self, dangerous):
        synth = SyntheticOracle(16, set(dangerous))
        assert probe_frequency(synth) == dangerous
        shared = SyntheticOracle(16, set(dangerous))
        found, probes = self._driver_on(shared, "frequency")
        assert found == dangerous
        # the driver adds one closing-sweep confirmation test beyond
        # the synthetic model's exploration
        assert len(probes) == synth.tests + 1

    @pytest.mark.parametrize("dangerous", [
        set(), {0}, {15}, {3, 4, 5}, {0, 8, 15}, {7, 8, 9, 10},
    ])
    def test_every_registered_strategy_converges(self, dangerous):
        """The strategy-lab contract on the synthetic oracle: every
        registered strategy isolates the same dangerous set."""
        from repro.oraql import DecisionSequence
        from repro.oraql.strategies import strategy_names
        for strategy in strategy_names():
            shared = SyntheticOracle(16, set(dangerous))
            if shared.test(DecisionSequence()):
                # fully optimistic: the driver never starts a strategy
                # (strategies may trust that the first attempt failed)
                continue
            found, _probes = self._driver_on(shared, strategy)
            assert found == dangerous, strategy


class TestRendering:
    def test_fig5_renders_both_tables(self):
        text = render_fig5()
        assert "this reproduction" in text
        assert "LLVM" in text

    def test_report_rendering(self):
        src = """
        void f(double* a, double* b) { a[0] = b[0] * 2.0; b[1] = a[1]; }
        int main() {
          double m[4];
          m[0] = 1.0; m[1] = 2.0; m[2] = 0.0; m[3] = 0.0;
          f(m, m + 1);
          printf("%.3f %.3f %.3f\\n", m[0], m[1], m[2]);
          return 0;
        }
        """
        cfg = BenchmarkConfig(name="r", sources=[SourceFile("r.c", src)])
        rep = ProbingDriver(cfg).run()
        text = render_report(rep)
        assert "== ORAQL report: r ==" in text
        assert "optimistic queries" in text
        assert "probing effort" in text
        if rep.pess_unique:
            assert "[ORAQL] Pessimistic query" in text
            dump = render_pessimistic_dump(rep)
            assert "Executing Pass" in dump


class TestConfigSerialization:
    def test_json_roundtrip(self):
        cfg = BenchmarkConfig(
            name="x",
            sources=[SourceFile("a.c", "int main() { return 0; }")],
            probe_files=["a.c"],
            target_filter="nvptx",
            nranks=2,
            output_filters=[("t.*", "T")],
        )
        back = BenchmarkConfig.from_json(cfg.to_json())
        assert back.name == cfg.name
        assert back.sources[0].text == cfg.sources[0].text
        assert back.output_filters == [("t.*", "T")]
        assert back.target_filter == "nvptx"

    def test_json_is_valid(self):
        cfg = BenchmarkConfig(name="x", sources=[])
        json.loads(cfg.to_json())


class TestCLI:
    def test_parser_options(self):
        p = build_parser()
        args = p.parse_args(["--workload", "XSBench-seq",
                             "--strategy", "frequency"])
        assert args.workload == "XSBench-seq"
        assert args.strategy == "frequency"

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "TestSNAP-openmp" in out
        assert "XSBench-cuda-thrust" in out

    def test_requires_input(self, capsys):
        assert main([]) == 2

    def test_config_file_workflow(self, tmp_path, capsys):
        src = """
        int main() {
          double a[8];
          for (int i = 0; i < 8; i++) { a[i] = i; }
          double s = 0.0;
          for (int i = 0; i < 8; i++) { s = s + a[i]; }
          printf("%.1f\\n", s);
          return 0;
        }
        """
        cfg = BenchmarkConfig(name="file-cfg",
                              sources=[SourceFile("m.c", src)])
        path = tmp_path / "bench.json"
        path.write_text(cfg.to_json())
        assert main(["--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ORAQL report: file-cfg" in out

    def test_workload_run(self, capsys):
        assert main(["--workload", "MiniGMG-ompif"]) == 0
        out = capsys.readouterr().out
        assert "fully optimistic" in out
