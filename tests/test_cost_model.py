"""Unit tests for the interpreter cycle cost model (§V-A / §V-C)."""

import pytest

from repro.vm.cost_model import (
    CostModel,
    DEFAULT_COSTS,
    INTRINSIC_COSTS,
    UnknownCostError,
    occupancy_factor,
)


class TestDefaultTables:
    def test_every_default_cost_is_positive_or_free(self):
        for op, cost in DEFAULT_COSTS.items():
            assert cost >= 0.0, op

    def test_memory_ops_cost_more_than_register_ops(self):
        assert DEFAULT_COSTS["load"] > DEFAULT_COSTS["add"]
        assert DEFAULT_COSTS["store"] > DEFAULT_COSTS["add"]

    def test_division_is_the_expensive_integer_op(self):
        for op in ("add", "sub", "mul", "and", "or", "xor", "shl"):
            assert DEFAULT_COSTS["sdiv"] > DEFAULT_COSTS[op]

    def test_fp_ops_cost_at_least_their_integer_counterparts(self):
        assert DEFAULT_COSTS["fadd"] >= DEFAULT_COSTS["add"]
        assert DEFAULT_COSTS["fmul"] >= DEFAULT_COSTS["mul"]

    def test_phi_is_free(self):
        # phis are resolved by copies counted at lowering time
        assert DEFAULT_COSTS["phi"] == 0.0

    def test_intrinsic_table_covers_the_math_library(self):
        for name in ("sqrt", "exp", "log", "pow", "sin", "cos", "fabs"):
            assert name in INTRINSIC_COSTS

    def test_intrinsic_table_covers_the_whole_runtime_surface(self):
        # strict measurement sessions price every call the VM runtime
        # can dispatch; a new runtime handler without a cost entry
        # would crash the importance driver mid-measurement
        from repro.vm.runtime import Runtime
        unpriced = set(Runtime().handlers) - set(INTRINSIC_COSTS)
        assert not unpriced, f"runtime calls without a cycle cost: " \
                             f"{sorted(unpriced)}"


class TestCostModel:
    def test_of_known_opcode(self):
        cm = CostModel()
        assert cm.of("load") == DEFAULT_COSTS["load"]
        assert cm.of("fdiv") == DEFAULT_COSTS["fdiv"]

    def test_of_unknown_opcode_defaults_to_one_cycle(self):
        assert CostModel().of("some-new-opcode") == 1.0

    def test_of_intrinsic_known_and_unknown(self):
        cm = CostModel()
        assert cm.of_intrinsic("sqrt") == INTRINSIC_COSTS["sqrt"]
        assert cm.of_intrinsic("erfc") == 10.0

    def test_instances_do_not_share_tables(self):
        a, b = CostModel(), CostModel()
        a.costs["load"] = 99.0
        a.intrinsic_costs["sqrt"] = 99.0
        assert b.of("load") == DEFAULT_COSTS["load"]
        assert b.of_intrinsic("sqrt") == INTRINSIC_COSTS["sqrt"]
        assert DEFAULT_COSTS["load"] != 99.0

    def test_custom_table_override(self):
        cm = CostModel(costs={"load": 2.0})
        assert cm.of("load") == 2.0
        assert cm.of("store") == 1.0  # fallback for missing entries


class TestStrictMode:
    def test_strict_unknown_opcode_raises(self):
        cm = CostModel(strict=True)
        with pytest.raises(UnknownCostError, match="some-new-opcode"):
            cm.of("some-new-opcode")

    def test_strict_unknown_intrinsic_raises(self):
        cm = CostModel(strict=True)
        with pytest.raises(UnknownCostError, match="erfc"):
            cm.of_intrinsic("erfc")

    def test_strict_known_entries_unaffected(self):
        cm = CostModel(strict=True)
        assert cm.of("load") == DEFAULT_COSTS["load"]
        assert cm.of_intrinsic("sqrt") == INTRINSIC_COSTS["sqrt"]
        assert cm.unknown_opcodes == {}
        assert cm.unknown_intrinsics == {}

    def test_unknowns_counted_in_lenient_mode(self):
        # the silent 1.0/10.0 defaults are no longer silent: even a
        # lenient model tallies what it could not price
        cm = CostModel()
        cm.of("mystery-op")
        cm.of("mystery-op")
        cm.of_intrinsic("erfc")
        assert cm.unknown_opcodes == {"mystery-op": 2}
        assert cm.unknown_intrinsics == {"erfc": 1}

    def test_unknowns_counted_in_strict_mode_too(self):
        cm = CostModel(strict=True)
        with pytest.raises(UnknownCostError):
            cm.of("mystery-op")
        assert cm.unknown_opcodes == {"mystery-op": 1}

    def test_unknown_cost_error_is_not_a_vm_error(self):
        # a missing table entry must crash the measuring session, not
        # become a "trapped" run verdict
        from repro.vm.errors import VMError
        assert not issubclass(UnknownCostError, VMError)


class TestOccupancyFactor:
    def test_no_penalty_at_or_below_32_registers(self):
        assert occupancy_factor(0) == 1.0
        assert occupancy_factor(32) == 1.0

    def test_monotone_non_decreasing_in_register_pressure(self):
        factors = [occupancy_factor(r) for r in range(0, 300)]
        assert factors == sorted(factors)

    @pytest.mark.parametrize("regs,expected", [
        (33, 1.08), (64, 1.08),     # first cliff
        (65, 1.38), (96, 1.38),
        (97, 1.48), (128, 1.48),
        (129, 1.58), (168, 1.58),
        (169, 1.75), (255, 1.75),   # saturation
    ])
    def test_cliff_boundaries(self, regs, expected):
        assert occupancy_factor(regs) == expected

    def test_penalty_saturates(self):
        assert occupancy_factor(10_000) == occupancy_factor(169)
