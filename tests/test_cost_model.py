"""Unit tests for the interpreter cycle cost model (§V-A / §V-C)."""

import pytest

from repro.vm.cost_model import (
    CostModel,
    DEFAULT_COSTS,
    INTRINSIC_COSTS,
    occupancy_factor,
)


class TestDefaultTables:
    def test_every_default_cost_is_positive_or_free(self):
        for op, cost in DEFAULT_COSTS.items():
            assert cost >= 0.0, op

    def test_memory_ops_cost_more_than_register_ops(self):
        assert DEFAULT_COSTS["load"] > DEFAULT_COSTS["add"]
        assert DEFAULT_COSTS["store"] > DEFAULT_COSTS["add"]

    def test_division_is_the_expensive_integer_op(self):
        for op in ("add", "sub", "mul", "and", "or", "xor", "shl"):
            assert DEFAULT_COSTS["sdiv"] > DEFAULT_COSTS[op]

    def test_fp_ops_cost_at_least_their_integer_counterparts(self):
        assert DEFAULT_COSTS["fadd"] >= DEFAULT_COSTS["add"]
        assert DEFAULT_COSTS["fmul"] >= DEFAULT_COSTS["mul"]

    def test_phi_is_free(self):
        # phis are resolved by copies counted at lowering time
        assert DEFAULT_COSTS["phi"] == 0.0

    def test_intrinsic_table_covers_the_math_library(self):
        for name in ("sqrt", "exp", "log", "pow", "sin", "cos", "fabs"):
            assert name in INTRINSIC_COSTS


class TestCostModel:
    def test_of_known_opcode(self):
        cm = CostModel()
        assert cm.of("load") == DEFAULT_COSTS["load"]
        assert cm.of("fdiv") == DEFAULT_COSTS["fdiv"]

    def test_of_unknown_opcode_defaults_to_one_cycle(self):
        assert CostModel().of("some-new-opcode") == 1.0

    def test_of_intrinsic_known_and_unknown(self):
        cm = CostModel()
        assert cm.of_intrinsic("sqrt") == INTRINSIC_COSTS["sqrt"]
        assert cm.of_intrinsic("erfc") == 10.0

    def test_instances_do_not_share_tables(self):
        a, b = CostModel(), CostModel()
        a.costs["load"] = 99.0
        a.intrinsic_costs["sqrt"] = 99.0
        assert b.of("load") == DEFAULT_COSTS["load"]
        assert b.of_intrinsic("sqrt") == INTRINSIC_COSTS["sqrt"]
        assert DEFAULT_COSTS["load"] != 99.0

    def test_custom_table_override(self):
        cm = CostModel(costs={"load": 2.0})
        assert cm.of("load") == 2.0
        assert cm.of("store") == 1.0  # fallback for missing entries


class TestOccupancyFactor:
    def test_no_penalty_at_or_below_32_registers(self):
        assert occupancy_factor(0) == 1.0
        assert occupancy_factor(32) == 1.0

    def test_monotone_non_decreasing_in_register_pressure(self):
        factors = [occupancy_factor(r) for r in range(0, 300)]
        assert factors == sorted(factors)

    @pytest.mark.parametrize("regs,expected", [
        (33, 1.08), (64, 1.08),     # first cliff
        (65, 1.38), (96, 1.38),
        (97, 1.48), (128, 1.48),
        (129, 1.58), (168, 1.58),
        (169, 1.75), (255, 1.75),   # saturation
    ])
    def test_cliff_boundaries(self, regs, expected):
        assert occupancy_factor(regs) == expected

    def test_penalty_saturates(self):
        assert occupancy_factor(10_000) == occupancy_factor(169)
