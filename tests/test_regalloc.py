"""Unit tests for linear-scan register allocation (Fig. 6 spill counts)."""

from repro.codegen.lowering import LiveInterval, LoweredFunction
from repro.codegen.regalloc import (
    AllocationResult,
    DEFAULT_REGS,
    gpu_pressure,
    linear_scan,
)
from repro.ir.types import F64, I8, I64
from repro.ir.values import Value


def _lowered(intervals):
    return LoweredFunction(function=None, machine_insts=0,
                           intervals=intervals, positions={},
                           frame_bytes=0, phi_copies=0)


def _iv(start, end, cls="int", width=1, ty=None):
    if ty is None:
        ty = I64 if cls == "int" else F64
    return LiveInterval(value=Value(ty, f"v{start}_{end}"),
                        start=start, end=end, cls=cls, width=width)


class TestLinearScan:
    def test_empty_function_has_no_spills(self):
        res = linear_scan(_lowered([]))
        assert res == AllocationResult(0, 0, {"int": 0, "fp": 0})

    def test_default_register_file(self):
        assert DEFAULT_REGS == {"int": 14, "fp": 16}

    def test_disjoint_intervals_reuse_one_register(self):
        ivs = [_iv(0, 1), _iv(2, 3), _iv(4, 5), _iv(6, 7)]
        res = linear_scan(_lowered(ivs), regs={"int": 1})
        assert res.spills == 0
        assert res.max_pressure["int"] == 1

    def test_overflow_spills_and_counts_pressure(self):
        # three intervals alive at once, two registers
        ivs = [_iv(0, 10), _iv(1, 9), _iv(2, 8)]
        res = linear_scan(_lowered(ivs), regs={"int": 2})
        assert res.spills == 1
        assert res.max_pressure["int"] == 3

    def test_victim_is_furthest_ending_interval(self):
        # the classic heuristic: spilling the furthest end frees the
        # register for the longest time, so adding a short fourth
        # interval after the spill causes no further spill
        ivs = [_iv(0, 100), _iv(1, 10), _iv(2, 9), _iv(11, 12)]
        res = linear_scan(_lowered(ivs), regs={"int": 2})
        assert res.spills == 1

    def test_spill_bytes_floor_is_eight(self):
        ivs = [_iv(0, 10, ty=I8), _iv(1, 10, ty=I8)]
        res = linear_scan(_lowered(ivs), regs={"int": 1})
        assert res.spills == 1
        assert res.spill_bytes == 8  # max(8, sizeof(i8))

    def test_register_classes_are_independent(self):
        # 2 int + 2 fp alive simultaneously; one register each class
        ivs = [_iv(0, 10, "int"), _iv(0, 10, "fp"),
               _iv(1, 9, "int"), _iv(1, 9, "fp")]
        res = linear_scan(_lowered(ivs), regs={"int": 1, "fp": 1})
        assert res.spills == 2
        assert res.max_pressure == {"int": 2, "fp": 2}

    def test_no_spill_under_default_register_file(self):
        ivs = [_iv(0, 20) for _ in range(14)]
        res = linear_scan(_lowered(ivs))
        assert res.spills == 0
        assert res.max_pressure["int"] == 14


class TestGpuPressure:
    def test_fixed_overhead_registers(self):
        assert gpu_pressure(_lowered([])) == 8

    def test_width_weighted_peak(self):
        # two overlapping vector values, two 32-bit registers each
        ivs = [_iv(0, 10, width=2), _iv(1, 9, width=2)]
        assert gpu_pressure(_lowered(ivs)) == 4 + 8

    def test_disjoint_intervals_do_not_stack(self):
        ivs = [_iv(0, 1, width=3), _iv(5, 6, width=3)]
        assert gpu_pressure(_lowered(ivs)) == 3 + 8

    def test_saturates_at_255(self):
        ivs = [_iv(0, 10, width=500)]
        assert gpu_pressure(_lowered(ivs)) == 255
