"""Regression tests for counter bleed across repeated-driver runs.

Before the fix, a :class:`TestExecutor` reused across configurations
carried ``retries_used``/``nondet_reruns`` (and the nondeterminism
probe latch) from one session into the next report, and a
``Statistics`` registry merged into itself doubled every counter.
"""

from repro.faults.injector import FaultInjector, FaultSpec
from repro.oraql.driver import ProbingDriver
from repro.oraql.executor import TestExecutor
from repro.passes.statistics import Statistics

from test_oraql_driver import HAZARD_SRC, SAFE_SRC, cfg_of


class TestExecutorSessionIsolation:
    def test_retries_do_not_bleed_into_next_report(self):
        injector = FaultInjector([FaultSpec("compiler-error", at=0)])
        executor = TestExecutor(injector=injector)

        first = ProbingDriver(cfg_of(HAZARD_SRC, "first"),
                              executor=executor).run()
        assert first.retries >= 1, "the planted fault must be retried"

        # same executor, second config: a clean session must report
        # zero fault handling, not the first session's counters
        second = ProbingDriver(cfg_of(SAFE_SRC, "second"),
                               executor=executor).run()
        assert second.retries == 0
        assert second.nondet_reruns == 0

    def test_mismatch_probe_latch_resets_per_session(self):
        executor = TestExecutor()
        ProbingDriver(cfg_of(HAZARD_SRC, "first"), executor=executor).run()
        # the hazard session probes at least one mismatching candidate
        assert executor._probed_mismatch
        executor.begin_session()
        assert not executor._probed_mismatch

    def test_repeated_sessions_give_identical_reports(self):
        executor = TestExecutor()
        reports = [ProbingDriver(cfg_of(HAZARD_SRC, "same"),
                                 executor=executor).run()
                   for _ in range(2)]
        a, b = reports
        assert a.pessimistic_indices == b.pessimistic_indices
        assert a.retries == b.retries == 0
        assert a.nondet_reruns == b.nondet_reruns
        assert a.final_program.exe_hash == b.final_program.exe_hash


class TestStatisticsMerge:
    def test_self_merge_is_a_noop(self):
        stats = Statistics()
        stats.add("LICM", "# loads hoisted", 3)
        stats.merge(stats)
        assert stats.get("LICM", "# loads hoisted") == 3

    def test_merge_adds_distinct_registries(self):
        a = Statistics()
        a.add("LICM", "# loads hoisted", 3)
        b = Statistics()
        b.add("LICM", "# loads hoisted", 2)
        b.add("DSE", "# stores deleted", 1)
        a.merge(b)
        assert a.get("LICM", "# loads hoisted") == 5
        assert a.get("DSE", "# stores deleted") == 1

    def test_report_rows_stable_after_self_merge(self):
        stats = Statistics()
        stats.add("GVN", "# loads eliminated", 7)
        before = stats.report()
        for _ in range(3):
            stats.merge(stats)
        assert stats.report() == before
