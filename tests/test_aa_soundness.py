"""Property-based soundness testing of the alias-analysis chain.

The one invariant everything rests on: when the chain answers
``no-alias`` for two locations, the accessed byte ranges must be
disjoint in *every* execution; ``must-alias`` means identical start
addresses.  We generate random access pairs over a small universe of
objects (two arrays, a struct, pointer arguments with concrete bindings)
and check the verdicts against ground-truth byte ranges.

ORAQL's entire premise is that the chain never lies in the conservative
direction — these tests pin that down.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AliasResult,
    LocationSize,
    MemoryLocation,
    build_aa_chain,
)
from repro.ir import (
    ArrayType,
    F64,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    StructType,
    VOID,
    ptr,
)

# ground-truth layout: object name -> (segment base, size in bytes)
SEGMENTS = {
    "A": (0, 128),       # double A[16]
    "B": (1000, 128),    # double B[16]
    "S": (2000, 24),     # struct { double x; double y; i64 t; }
}


@st.composite
def access(draw):
    """(object, element index, access bytes) with in-bounds ranges."""
    obj = draw(st.sampled_from(["A", "B", "S"]))
    if obj == "S":
        field = draw(st.integers(0, 2))
        return (obj, field, 8)
    idx = draw(st.integers(0, 15))
    return (obj, idx, 8)


def truth_range(a):
    obj, idx, size = a
    base, _ = SEGMENTS[obj]
    if obj == "S":
        off = idx * 8
    else:
        off = idx * 8
    return (base + off, base + off + size)


def overlap(r1, r2):
    return r1[0] < r2[1] and r2[0] < r1[1]


def build_pair(module, a, b):
    """Materialize both accesses as IR locations in one function."""
    fn = module.add_function(FunctionType(VOID, []), module.name + ".f")
    bb = fn.add_block("entry")
    bld = IRBuilder(bb)
    arrays = {
        "A": bld.alloca(ArrayType(F64, 16), name="A"),
        "B": bld.alloca(ArrayType(F64, 16), name="B"),
        "S": bld.alloca(StructType("S3", [F64, F64, I64],
                                   ["x", "y", "t"]), name="S"),
    }

    def loc(acc):
        obj, idx, size = acc
        g = bld.gep(arrays[obj], [0, idx])
        return MemoryLocation(g, LocationSize.precise_(size))

    la, lb = loc(a), loc(b)
    bld.ret()
    return fn, la, lb


_counter = [0]


@settings(max_examples=200, deadline=None)
@given(access(), access())
def test_chain_verdicts_sound_for_constant_accesses(a, b):
    _counter[0] += 1
    module = Module(f"snd{_counter[0]}")
    fn, la, lb = build_pair(module, a, b)
    aa = build_aa_chain()
    aa.current_function = fn
    verdict = aa.alias(la, lb)

    ra, rb = truth_range(a), truth_range(b)
    really_overlaps = overlap(ra, rb)
    if verdict is AliasResult.NO:
        assert not really_overlaps, (a, b, verdict)
    elif verdict is AliasResult.MUST:
        assert ra == rb, (a, b, verdict)
    elif verdict is AliasResult.PARTIAL:
        assert really_overlaps, (a, b, verdict)
    # MAY is always allowed (conservative)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 12), st.integers(0, 12), st.integers(-4, 4))
def test_variable_index_geps_sound(i_val, j_val, delta):
    """a[i] vs a[i + delta] with i as a runtime argument: a no-alias
    verdict must hold for the concrete binding we chose."""
    _counter[0] += 1
    module = Module(f"var{_counter[0]}")
    fn = module.add_function(FunctionType(VOID, [I64]), "f", ["i"])
    bb = fn.add_block("entry")
    bld = IRBuilder(bb)
    arr = bld.alloca(ArrayType(F64, 32), name="a")
    base = bld.gep(arr, [0, 0])
    gi = bld.gep(base, [fn.args[0]])
    shifted = bld.add(fn.args[0], bld.i64(delta))
    gj = bld.gep(base, [shifted])
    bld.ret()

    aa = build_aa_chain()
    aa.current_function = fn
    P8 = LocationSize.precise_(8)
    verdict = aa.alias(MemoryLocation(gi, P8), MemoryLocation(gj, P8))

    # ground truth under the binding i := i_val (and j = i + delta)
    ra = (i_val * 8, i_val * 8 + 8)
    rb = ((i_val + delta) * 8, (i_val + delta) * 8 + 8)
    if verdict is AliasResult.NO:
        assert not overlap(ra, rb), (i_val, delta)
    if verdict is AliasResult.MUST:
        assert ra == rb, (i_val, delta)
    # structural expectation: same var cancels, so delta decides exactly
    if delta == 0:
        assert verdict is AliasResult.MUST
    else:
        assert verdict is AliasResult.NO


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 8), st.integers(0, 7), st.integers(0, 7))
def test_strided_accesses_gcd_sound(stride, r1, r2):
    """a[s*i + r1] vs a[s*j + r2]: the GCD rule may prove no-alias only
    when the residues keep every pair of elements disjoint."""
    _counter[0] += 1
    module = Module(f"gcd{_counter[0]}")
    fn = module.add_function(FunctionType(VOID, [I64, I64]), "f",
                             ["i", "j"])
    bb = fn.add_block("entry")
    bld = IRBuilder(bb)
    arr = bld.alloca(ArrayType(F64, 128), name="a")
    base = bld.gep(arr, [0, 0])
    si = bld.mul(fn.args[0], bld.i64(stride))
    sj = bld.mul(fn.args[1], bld.i64(stride))
    gi = bld.gep(bld.gep(base, [si]), [r1])
    gj = bld.gep(bld.gep(base, [sj]), [r2])
    bld.ret()

    aa = build_aa_chain()
    aa.current_function = fn
    P8 = LocationSize.precise_(8)
    verdict = aa.alias(MemoryLocation(gi, P8), MemoryLocation(gj, P8))
    if verdict is AliasResult.NO:
        # must be disjoint for ALL i, j: check a grid of bindings
        for i in range(0, 6):
            for j in range(0, 6):
                a0 = (stride * i + r1) * 8
                b0 = (stride * j + r2) * 8
                assert not overlap((a0, a0 + 8), (b0, b0 + 8)), (
                    stride, r1, r2, i, j)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15), st.booleans())
def test_tbaa_never_contradicts_layout(i, j, same_type):
    """TBAA no-alias is a *type* claim; for accesses of the same scalar
    type it must never fire, whatever the addresses."""
    _counter[0] += 1
    module = Module(f"tb{_counter[0]}")
    fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
    bb = fn.add_block("entry")
    bld = IRBuilder(bb)
    gi = bld.gep(fn.args[0], [i])
    gj = bld.gep(fn.args[0], [j])
    bld.ret()
    td = module.tbaa.scalar("double")
    tl = module.tbaa.scalar("long")
    from repro.analysis import TypeBasedAA
    aa = TypeBasedAA()
    P8 = LocationSize.precise_(8)
    la = MemoryLocation(gi, P8, tbaa=td)
    lb = MemoryLocation(gj, P8, tbaa=td if same_type else tl)
    verdict = aa.alias(la, lb, fn)
    if same_type:
        assert verdict is AliasResult.MAY
    elif i == j:
        # strict aliasing genuinely allows this no-alias claim: accessing
        # the same memory as two distinct scalar types is UB in C
        assert verdict is AliasResult.NO
