"""Tests for the delta-debugging reducer: shrinkage, invariants,
trial accounting, and the end-to-end shrink of a real hazard seed."""

import copy

import pytest

from repro.frontend import parse
from repro.fuzz.campaign import SELF_TEST_SIZE_LIMIT, _optimism_diverges
from repro.fuzz.generator import GeneratorOptions, generate_program
from repro.fuzz.reduce import reduce_program
from repro.fuzz.render import ast_size, render_unit


def _unit(source):
    return parse(source, filename="t.c")


MANY_STMTS = """\
int main() {
  int a = 1;
  int b = 2;
  int c = 3;
  int d = 4;
  int e = 5;
  printf("%d\\n", c);
  return 0;
}
"""


class TestDdmin:
    def test_shrinks_to_the_needed_statements(self):
        unit = _unit(MANY_STMTS)
        # interesting = "still prints via c"; everything else should go
        predicate = lambda u: "printf" in render_unit(u) \
            and "c" in render_unit(u)  # noqa: E731
        res = reduce_program(unit, predicate)
        assert res.final_size < res.initial_size
        assert "printf" in res.source
        assert "int b" not in res.source

    def test_input_unit_is_never_mutated(self):
        unit = _unit(MANY_STMTS)
        before = render_unit(unit)
        reduce_program(unit, lambda u: "printf" in render_unit(u))
        assert render_unit(unit) == before

    def test_non_reproducing_input_is_returned_unchanged(self):
        unit = _unit(MANY_STMTS)
        res = reduce_program(unit, lambda u: False)
        assert res.final_size == res.initial_size
        assert res.trials == 1  # only the entry assertion
        assert res.rounds == 0

    def test_predicate_exceptions_mean_not_interesting(self):
        unit = _unit(MANY_STMTS)
        calls = {"n": 0}

        def flaky(u):
            calls["n"] += 1
            if calls["n"] == 1:
                return True  # entry check passes
            raise RuntimeError("compile error")

        res = reduce_program(unit, flaky)
        # nothing shrank, but the reducer survived
        assert res.final_size == res.initial_size

    def test_trial_budget_is_respected(self):
        unit = _unit(MANY_STMTS)
        res = reduce_program(unit, lambda u: True, max_trials=5)
        assert res.trials <= 5


class TestStructureOps:
    def test_unused_helper_functions_are_dropped(self):
        unit = _unit("""\
double helper(double x) {
  return x * 2.0;
}

int main() {
  printf("%d\\n", 1);
  return 0;
}
""")
        res = reduce_program(unit, lambda u: "printf" in render_unit(u))
        assert "helper" not in res.source

    def test_loops_are_hoisted_when_the_body_suffices(self):
        unit = _unit("""\
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 4; i = i + 1) {
    acc = acc + 1;
  }
  printf("%d\\n", acc);
  return 0;
}
""")
        res = reduce_program(
            unit, lambda u: "acc + 1" in render_unit(u))
        assert "for" not in res.source

    def test_else_branches_are_dropped(self):
        unit = _unit("""\
int main() {
  int x = 1;
  if (x > 0) {
    printf("%d\\n", 1);
  } else {
    printf("%d\\n", 2);
  }
  return 0;
}
""")
        res = reduce_program(unit, lambda u: "printf" in render_unit(u))
        assert "else" not in res.source


class TestEndToEnd:
    def test_hazard_seed_shrinks_below_the_self_test_limit(self):
        prog = generate_program(1, GeneratorOptions(hazard=True))
        assert _optimism_diverges(copy.deepcopy(prog.unit), 3)
        res = reduce_program(prog.unit,
                             lambda u: _optimism_diverges(u, 3),
                             max_trials=600)
        assert res.final_size <= SELF_TEST_SIZE_LIMIT
        assert res.final_size < ast_size(prog.unit)
        # the minimal reproducer still diverges
        assert _optimism_diverges(copy.deepcopy(res.unit), 3)
