"""Edge-case unit tests for the incremental-recompilation primitives:
``decision_delta`` and :class:`RemappedDecisionSequence`.

These pin the boundary behaviors the differential suites only hit
implicitly: empty baselines, a divergence at index 0, and the
past-end-of-sequence optimism rule (§IV-A: an exhausted sequence
answers no-alias) interacting with scope boundaries.
"""

from dataclasses import dataclass

import pytest

from repro.oraql.incremental import (ReplayDivergence,
                                     RemappedDecisionSequence,
                                     affected_functions, decision_delta,
                                     effective_bit, sub_delta_indices)


@dataclass
class Rec:
    """The slice of a QueryRecord the delta machinery reads."""
    index: int
    optimistic: bool
    scope: str = "f"


class TestEffectiveBit:
    def test_explicit_bits(self):
        assert effective_bit([1, 0], 0) is True
        assert effective_bit([1, 0], 1) is False

    def test_past_end_is_optimistic(self):
        assert effective_bit([], 0) is True
        assert effective_bit([0], 5) is True


class TestDecisionDelta:
    def test_empty_baseline_has_no_delta(self):
        # a baseline that never consulted ORAQL can't diverge
        assert decision_delta([], [0, 1, 0]) is None
        assert decision_delta([], []) is None

    def test_delta_at_index_zero(self):
        records = [Rec(0, True), Rec(1, True)]
        assert decision_delta(records, [0, 1]) == 0

    def test_verbatim_replay_is_none(self):
        records = [Rec(0, True), Rec(1, False), Rec(2, True)]
        assert decision_delta(records, [1, 0, 1]) is None

    def test_short_bits_replay_via_exhaustion_optimism(self):
        # bits shorter than the stream: past-end indices answer
        # optimistically, matching an all-optimistic baseline tail
        records = [Rec(0, True), Rec(1, True), Rec(2, True)]
        assert decision_delta(records, []) is None
        assert decision_delta(records, [1]) is None

    def test_exhaustion_mismatch_detected(self):
        # the baseline answered pessimistically where the new (shorter)
        # sequence would answer optimistically past its end
        records = [Rec(0, True), Rec(1, False)]
        assert decision_delta(records, [1]) == 1

    def test_first_divergence_wins(self):
        records = [Rec(0, True), Rec(1, True), Rec(2, True)]
        assert decision_delta(records, [1, 0, 0]) == 1

    def test_cached_reasks_respected(self):
        # the same index consulted twice (cache hits re-recorded): both
        # consultations are compared, neither double-counts
        records = [Rec(0, True), Rec(0, True), Rec(1, False)]
        assert decision_delta(records, [1, 0]) is None
        assert decision_delta(records, [0, 0]) == 0


class TestScopeBoundaries:
    # two functions, f owning indices 0-1 and g owning 2-3; the flip
    # lands exactly on g's first index past the shortened sequence
    RECORDS = [Rec(0, True, "f"), Rec(1, True, "f"),
               Rec(2, True, "g"), Rec(3, False, "g")]

    def test_exhaustion_delta_lands_on_scope_boundary(self):
        # bits = [1,1,1]: indices 0-2 replay, index 3 flips (past-end
        # optimism True vs baseline False)
        delta = decision_delta(self.RECORDS, [1, 1, 1])
        assert delta == 3

    def test_affected_functions_only_past_delta(self):
        assert affected_functions(self.RECORDS, 3) == {"g"}
        assert affected_functions(self.RECORDS, 2) == {"g"}
        assert affected_functions(self.RECORDS, 1) == {"f", "g"}
        assert affected_functions(self.RECORDS, 0) == {"f", "g"}

    def test_sub_delta_indices_are_scope_owned_prefix(self):
        # g re-fills its own index 2 before reaching the divergence
        assert sub_delta_indices(self.RECORDS, 3, {"g"}) == [2]
        assert sub_delta_indices(self.RECORDS, 3, {"f"}) == [0, 1]
        assert sub_delta_indices(self.RECORDS, 0, {"f", "g"}) == []


class TestRemappedDecisionSequence:
    def test_sub_then_delta_indexing(self):
        seq = RemappedDecisionSequence(bits=[0, 1, 0, 1], sub=[1],
                                       delta=2)
        # miss 0 lands on sub[0]=1, then 2, 3, 4, ...
        assert seq.consumed == 1
        assert seq.next() is True     # bits[1]
        assert seq.consumed == 2
        assert seq.next() is False    # bits[2]
        assert seq.next() is True     # bits[3]
        assert seq.next() is True     # past the end: optimistic
        assert seq.misses == 4

    def test_empty_sub_starts_at_delta(self):
        seq = RemappedDecisionSequence(bits=[1, 1, 0], sub=[], delta=2)
        assert seq.consumed == 2
        assert seq.next() is False

    def test_delta_zero_with_empty_bits(self):
        # the degenerate fully-optimistic restricted run: every miss
        # past an empty sequence answers no-alias
        seq = RemappedDecisionSequence(bits=[], sub=[], delta=0)
        assert [seq.next() for _ in range(4)] == [True] * 4

    def test_reset_replays(self):
        seq = RemappedDecisionSequence(bits=[0, 1], sub=[0], delta=1)
        first = [seq.next(), seq.next()]
        seq.reset()
        assert [seq.next(), seq.next()] == first

    def test_schedule_match_passes(self):
        seq = RemappedDecisionSequence(
            bits=[1, 1], sub=[0], delta=1,
            schedule=[("f", 3), ("f", 3)])
        seq.observe("f", 3)
        seq.next()
        seq.observe("f", 3)
        seq.next()

    def test_schedule_divergence_raises(self):
        seq = RemappedDecisionSequence(
            bits=[1], sub=[], delta=0, schedule=[("f", 3)])
        with pytest.raises(ReplayDivergence):
            seq.observe("g", 3)   # wrong scope
        seq.reset()
        with pytest.raises(ReplayDivergence):
            seq.observe("f", 4)   # wrong ordinal

    def test_miss_past_schedule_raises(self):
        seq = RemappedDecisionSequence(
            bits=[1], sub=[], delta=0, schedule=[("f", 0)])
        seq.observe("f", 0)
        seq.next()
        with pytest.raises(ReplayDivergence):
            seq.observe("f", 0)   # one miss more than predicted

    def test_no_schedule_means_no_guard(self):
        seq = RemappedDecisionSequence(bits=[1], sub=[], delta=0)
        seq.observe("anything", 99)  # silently accepted
        assert seq.next() is True
