"""Tests for the probing session journal: CRC'd records, corruption
tolerance, header identity checks, and kill-and-resume determinism
(the resumed session must retrace the interrupted one bit-identically)."""

import json

import pytest

from repro.faults.injector import FaultInjector, FaultSpec, SessionKilled
from repro.oraql import (
    BenchmarkConfig,
    JournalError,
    ProbingDriver,
    SessionJournal,
    SourceFile,
)
from repro.oraql.journal import _decode, _encode
from repro.oraql.strategies import strategy_names

HAZARD_SRC = """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
int main() {
  double buf[64];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  scale_shift(buf + 1, buf, 60);
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s = s + buf[i] * i; }
  printf("buf = %.6f\\n", s);
  return 0;
}
"""

CELL_SRC = """
void pump(double* cell, double* arr, int n) {
  for (int i = 0; i < n; i++) { arr[i] = cell[0] + i; }
}
void touch(double* a, double* b) {
  double before = a[0];
  b[0] = before * 2.0;
  a[1] = a[0] - before;
}
int main() {
  double a[8]; double m[4];
  for (int i = 0; i < 8; i++) { a[i] = 1.0; }
  m[0] = 3.0; m[1] = 0.0;
  pump(a + 3, a, 8);
  touch(m, m);
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s = s + a[i] * (i + 1); }
  printf("%.2f %.1f\\n", s, m[1]);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


class TestRecordFormat:
    def test_crc_round_trip(self):
        line = _encode({"t": "probe", "exe": "abc", "ok": True, "n": 3})
        rec = _decode(line)
        assert rec == {"t": "probe", "exe": "abc", "ok": True, "n": 3}

    def test_bit_flip_detected(self):
        line = _encode({"t": "probe", "exe": "abc", "ok": True, "n": 3})
        assert _decode(line.replace('"ok":true', '"ok":false')) is None

    def test_garbage_rejected(self):
        assert _decode("not json at all") is None
        assert _decode(json.dumps(["a", "list"])) is None
        assert _decode(json.dumps({"no": "crc"})) is None


class TestJournalLifecycle:
    def test_fresh_write_and_resume(self, tmp_path):
        path = str(tmp_path / "s.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked")
        j.record_probe("h1", True, 5, "ok")
        j.record_probe("h2", False, 7, "wrong-output")
        r = SessionJournal(path, "fp", "chunked", resume=True)
        assert r.replayed == {"h1": (True, 5, "ok"),
                              "h2": (False, 7, "wrong-output")}
        assert r.corrupt_records == 0
        assert not r.completed and not r.header_lost

    def test_done_record(self, tmp_path):
        path = str(tmp_path / "s.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked")
        j.record_probe("h1", True, 5, "ok")
        j.record_done([3, 1])
        r = SessionJournal(path, "fp", "chunked", resume=True)
        assert r.completed
        assert r.pessimistic_from_done == [1, 3]

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "s.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked")
        j.record_probe("h1", True, 5, "ok")
        j.record_probe("h2", False, 7, "trapped")
        with open(path, "rb+") as f:
            f.truncate(f.seek(0, 2) - 9)  # tear the last record
        r = SessionJournal(path, "fp", "chunked", resume=True)
        assert r.replayed == {"h1": (True, 5, "ok")}
        assert r.corrupt_records == 1

    def test_wrong_session_header_raises(self, tmp_path):
        path = str(tmp_path / "s.journal.jsonl")
        SessionJournal(path, "fp-a", "chunked")
        with pytest.raises(JournalError, match="different"):
            SessionJournal(path, "fp-b", "chunked", resume=True)
        with pytest.raises(JournalError, match="different"):
            SessionJournal(path, "fp-a", "frequency", resume=True)

    def test_torn_header_is_tolerated(self, tmp_path):
        # corruption (including the header line) is never fatal: the
        # surviving records replay and the damage is counted
        path = str(tmp_path / "s.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked")
        j.record_probe("h1", True, 5, "ok")
        with open(path, "r") as f:
            lines = f.readlines()
        with open(path, "w") as f:
            f.write(lines[0][:-10] + "\n")  # tear the header
            f.writelines(lines[1:])
        r = SessionJournal(path, "fp", "chunked", resume=True)
        assert r.header_lost
        assert r.corrupt_records == 1
        assert r.replayed == {"h1": (True, 5, "ok")}

    def test_append_oserror_degrades(self, tmp_path):
        path = str(tmp_path / "s.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked")
        j.path = str(tmp_path)  # appending to a directory fails
        j.record_probe("h1", True, 5, "ok")
        assert j.dropped_appends == 1

    def test_resume_of_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "nope.journal.jsonl")
        j = SessionJournal(path, "fp", "chunked", resume=True)
        assert j.replayed == {}
        r = SessionJournal(path, "fp", "chunked", resume=True)
        assert r.corrupt_records == 0  # the fresh header was written


class TestKillAndResume:
    """The acceptance criterion: kill a probing session mid-flight,
    resume it from the journal, and require the resumed report to be
    bit-identical to an uninterrupted run — same pessimistic set, same
    final executable, same total verdict count (run + cached)."""

    @pytest.mark.parametrize("src,kill_at", [(HAZARD_SRC, 1),
                                             (CELL_SRC, 3)])
    # every registered strategy must resume bit-identically — a
    # strategy is a pure function of (seed, observed outcomes)
    @pytest.mark.parametrize("strategy", strategy_names())
    def test_resume_is_bit_identical(self, tmp_path, src, kill_at,
                                     strategy):
        cfg = cfg_of(src)
        ref = ProbingDriver(cfg, strategy=strategy).run()
        assert not ref.fully_optimistic  # the bisection must be real

        jdir = str(tmp_path / "journal")
        injector = FaultInjector([FaultSpec("session-kill", at=kill_at)])
        journal = SessionJournal.for_config(jdir, cfg, strategy)
        with pytest.raises(SessionKilled):
            ProbingDriver(cfg, strategy=strategy, journal=journal,
                          injector=injector).run()

        resumed_journal = SessionJournal.for_config(jdir, cfg, strategy,
                                                    resume=True)
        assert not resumed_journal.completed
        rep = ProbingDriver(cfg, strategy=strategy,
                            journal=resumed_journal).run()
        assert rep.pessimistic_indices == ref.pessimistic_indices
        assert rep.final_program.exe_hash == ref.final_program.exe_hash
        assert rep.fully_optimistic == ref.fully_optimistic
        # replayed verdicts shift from "run" to "cached", never vanish
        assert rep.tests_run + rep.tests_cached \
            == ref.tests_run + ref.tests_cached
        assert rep.tests_replayed == len(resumed_journal.replayed)
        # and the resumed journal now carries the terminal marker
        final = SessionJournal.for_config(jdir, cfg, strategy,
                                          resume=True)
        assert final.completed
        assert final.pessimistic_from_done == ref.pessimistic_indices
