"""CLI error-path tests: unknown subcommands and unknown workloads
must exit 2 with a structured message, never a traceback."""

import pytest

from repro.oraql.cli import importance_main, main


class TestUnknownSubcommand:
    def test_exit_2_with_usage(self, capsys):
        assert main(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand 'bogus'" in err
        assert "importance" in err      # names the known subcommands
        assert "usage:" in err
        assert "Traceback" not in err

    def test_subcommand_like_typo(self, capsys):
        assert main(["importence"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_known_subcommand_still_dispatches(self, capsys):
        # `oraql importance` without a config reports its own error,
        # proving dispatch reached importance_main
        assert main(["importance"]) == 2
        assert "--config / --workload" in capsys.readouterr().err

    def test_flags_still_reach_main_parser(self, capsys):
        assert main(["--list"]) == 0
        assert "MiniGMG-sse" in capsys.readouterr().out


class TestUnknownWorkload:
    def test_main_exits_2_and_names_rows(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--workload", "NoSuchBench"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown workload 'NoSuchBench'" in err
        assert "MiniGMG-sse" in err     # lists the known rows
        assert "KeyError" not in err

    def test_importance_exits_2_and_names_rows(self, capsys):
        with pytest.raises(SystemExit) as exc:
            importance_main(["--workload", "NoSuchBench"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown workload 'NoSuchBench'" in err
        assert "MiniGMG-sse" in err

    def test_importance_via_main_dispatch(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["importance", "--workload", "NoSuchBench"])
        assert exc.value.code == 2
        assert "unknown workload" in capsys.readouterr().err
