"""CLI error-path tests: unknown subcommands and unknown workloads
must exit 2 with a structured message, never a traceback."""

import pytest

from repro.oraql.cli import importance_main, main


class TestUnknownSubcommand:
    def test_exit_2_with_usage(self, capsys):
        assert main(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand 'bogus'" in err
        assert "importance" in err      # names the known subcommands
        assert "usage:" in err
        assert "Traceback" not in err

    def test_subcommand_like_typo(self, capsys):
        assert main(["importence"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_known_subcommand_still_dispatches(self, capsys):
        # `oraql importance` without a config reports its own error,
        # proving dispatch reached importance_main
        assert main(["importance"]) == 2
        assert "--config / --workload" in capsys.readouterr().err

    def test_flags_still_reach_main_parser(self, capsys):
        assert main(["--list"]) == 0
        assert "MiniGMG-sse" in capsys.readouterr().out


class TestUnknownWorkload:
    def test_main_exits_2_and_names_rows(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--workload", "NoSuchBench"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown workload 'NoSuchBench'" in err
        assert "MiniGMG-sse" in err     # lists the known rows
        assert "KeyError" not in err

    def test_importance_exits_2_and_names_rows(self, capsys):
        with pytest.raises(SystemExit) as exc:
            importance_main(["--workload", "NoSuchBench"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown workload 'NoSuchBench'" in err
        assert "MiniGMG-sse" in err

    def test_importance_via_main_dispatch(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["importance", "--workload", "NoSuchBench"])
        assert exc.value.code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestUnknownStrategy:
    """--strategy choices come from the strategy registry — one source
    of truth for both the oraql and importance parsers — and an unknown
    name is a structured exit-2 error naming every registered
    strategy, never a traceback."""

    def test_main_exits_2_and_names_strategies(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--workload", "XSBench-seq", "--strategy", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in ("chunked", "frequency", "mcts", "provenance-prior"):
            assert name in err
        assert "Traceback" not in err

    def test_importance_exits_2_and_names_strategies(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["importance", "--workload", "XSBench-seq",
                  "--strategy", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "mcts" in err and "provenance-prior" in err

    def test_choices_derive_from_registry(self):
        from repro.oraql.cli import build_importance_parser, build_parser
        from repro.oraql.strategies import strategy_names
        for build in (build_parser, build_importance_parser):
            actions = [a for a in build()._actions
                       if "--strategy" in a.option_strings]
            assert len(actions) == 1
            assert list(actions[0].choices) == strategy_names()

    def test_every_registered_strategy_parses(self):
        from repro.oraql.cli import build_parser
        from repro.oraql.strategies import strategy_names
        p = build_parser()
        for name in strategy_names():
            assert p.parse_args(["--strategy", name]).strategy == name


class TestFitPriorArgs:
    def test_dispatches_from_main(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fit-prior", "--seeds", "0"])
        assert exc.value.code == 2
        assert "--seeds must be >= 1" in capsys.readouterr().err

    def test_bad_opt_level_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fit-prior", "--opt-level", "7"])
        assert exc.value.code == 2
        assert "Traceback" not in capsys.readouterr().err
