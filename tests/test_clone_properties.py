"""Hypothesis property tests for structural function cloning.

The incremental compiler's correctness rests on three clone
invariants, here checked over generator-fuzzed programs instead of
hand-picked examples:

* **print identity** — a clone renders byte-for-byte like its source
  (so spliced executables hash identically);
* **name-counter identity** — the clone hands out the same fresh names
  the original would next (so a resumed pipeline generates identical
  IR);
* **use-order identity** — after :func:`mirror_use_order`, every local
  value's use-list iterates in exactly the source's order (so
  order-sensitive passes behave identically on restored bodies).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.fuzz.generator import GeneratorOptions, generate_program
from repro.fuzz.oracle import base_config
from repro.ir import (clone_function_into, detach_uses, function_hash,
                      mirror_use_order)
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.oraql.compiler import Compiler


def fuzzed_module(seed: int, hazard: bool) -> Module:
    prog = generate_program(seed, GeneratorOptions(hazard=hazard))
    return compile_source(prog.source, filename="fuzz.c")


def assert_clone_invariants(fn, target: Module) -> None:
    vmap = {}
    clone = clone_function_into(fn, target, value_map=vmap)
    # print identity, textually and through the content hash
    assert print_function(clone) == print_function(fn)
    assert function_hash(clone) == function_hash(fn)
    # fresh-name counter carried over
    assert clone._next_names == fn._next_names
    # use-order identity after mirroring
    detach_uses(clone)
    mirror_use_order(fn, vmap)
    values = list(fn.args) + [inst for bb in fn.blocks
                              for inst in bb.instructions]
    for v in values:
        c = vmap.get(v.id)
        if c is None:
            continue
        expected = [vmap[u.id] for u in v.users if u.id in vmap]
        assert list(c.users) == expected, (
            f"use-list order diverged for {v!r} in {fn.name}")


class TestCloneProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           hazard=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_unoptimized_bodies(self, seed, hazard):
        module = fuzzed_module(seed, hazard)
        target = Module("target")
        for fn in module.defined_functions():
            assert_clone_invariants(fn, target)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_pipeline_optimized_bodies(self, seed):
        # the bodies the incremental compiler actually splices are
        # post-O3: phi-heavy, renamed, vectorized — clone those too
        prog = generate_program(seed, GeneratorOptions(hazard=True))
        compiled = Compiler().compile(base_config(seed, prog.source))
        target = Module("target")
        for fn in compiled.module.defined_functions():
            assert_clone_invariants(fn, target)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_clone_into_same_module(self, seed):
        # the splice path clones into the module being compiled; the
        # invariants must hold there as much as for a foreign target
        module = fuzzed_module(seed, hazard=True)
        for fn in list(module.defined_functions()):
            assert_clone_invariants(fn, module)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_clone_leaves_original_untouched(self, seed):
        module = fuzzed_module(seed, hazard=False)
        before = {fn.name: print_function(fn)
                  for fn in module.defined_functions()}
        target = Module("target")
        for fn in module.defined_functions():
            clone = clone_function_into(fn, target)
            detach_uses(clone)
        after = {fn.name: print_function(fn)
                 for fn in module.defined_functions()}
        assert after == before
