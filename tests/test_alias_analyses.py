"""Unit tests for the alias-analysis stack (BasicAA, TBAA,
ScopedNoAlias, GlobalsAA, CFL-Steens, CFL-Anders) and the chain."""

import pytest

from repro.analysis import (
    AAResults,
    AliasResult,
    BasicAA,
    CFLAndersAA,
    CFLSteensAA,
    GlobalsAA,
    LocationSize,
    MemoryLocation,
    ModRefInfo,
    ScopedNoAliasAA,
    TypeBasedAA,
    build_aa_chain,
)
from repro.ir import (
    AliasScope,
    ArrayType,
    F64,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    ScopedAliasMD,
    VOID,
    ptr,
)

P8 = LocationSize.precise_(8)


def loc(v, size=P8, tbaa=None, scoped=None):
    return MemoryLocation(v, size, tbaa, scoped)


@pytest.fixture
def fnb(module):
    fn = module.add_function(
        FunctionType(VOID, [ptr(F64), ptr(F64), I64]), "f", ["a", "b", "n"])
    return fn, IRBuilder(fn.add_block("entry"))


class TestBasicAA:
    aa = BasicAA()

    def test_identical_pointers_must(self, fnb):
        fn, b = fnb
        assert self.aa.alias(loc(fn.args[0]), loc(fn.args[0]), fn) \
            is AliasResult.MUST

    def test_distinct_args_may(self, fnb):
        fn, b = fnb
        assert self.aa.alias(loc(fn.args[0]), loc(fn.args[1]), fn) \
            is AliasResult.MAY

    def test_distinct_allocas_noalias(self, fnb):
        fn, b = fnb
        x = b.alloca(F64)
        y = b.alloca(F64)
        assert self.aa.alias(loc(x), loc(y), fn) is AliasResult.NO

    def test_alloca_vs_global_noalias(self, fnb, module):
        fn, b = fnb
        g = module.add_global(F64, "g")
        x = b.alloca(F64)
        assert self.aa.alias(loc(x), loc(g), fn) is AliasResult.NO

    def test_distinct_globals_noalias(self, module, fnb):
        fn, _ = fnb
        g1 = module.add_global(F64, "g1")
        g2 = module.add_global(F64, "g2")
        assert self.aa.alias(loc(g1), loc(g2), fn) is AliasResult.NO

    def test_noncaptured_alloca_vs_arg(self, fnb):
        fn, b = fnb
        x = b.alloca(F64)
        b.store(b.f64(1.0), x)
        assert self.aa.alias(loc(x), loc(fn.args[0]), fn) is AliasResult.NO

    def test_captured_alloca_vs_loaded_pointer_may(self, module):
        fn = module.add_function(
            FunctionType(VOID, [ptr(ptr(F64))]), "g", ["pp"])
        b = IRBuilder(fn.add_block("entry"))
        x = b.alloca(F64)
        b.store(x, fn.args[0])          # address escapes
        p = b.load(fn.args[0])
        assert self.aa.alias(loc(x), loc(p), fn) is AliasResult.MAY

    def test_noalias_arg_vs_other_arg(self, module):
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), ptr(F64)]), "g", ["r", "o"])
        fn.args[0].attrs.add("noalias")
        assert self.aa.alias(loc(fn.args[0]), loc(fn.args[1]), fn) \
            is AliasResult.NO

    def test_same_base_disjoint_offsets(self, fnb):
        fn, b = fnb
        g0 = b.gep(fn.args[0], [0])
        g1 = b.gep(fn.args[0], [1])
        assert self.aa.alias(loc(g0), loc(g1), fn) is AliasResult.NO

    def test_same_base_same_offset_must(self, fnb):
        fn, b = fnb
        g0 = b.gep(fn.args[0], [3])
        g1 = b.gep(fn.args[0], [3])
        assert self.aa.alias(loc(g0), loc(g1), fn) is AliasResult.MUST

    def test_same_base_partial_overlap(self, fnb):
        fn, b = fnb
        g0 = b.gep(fn.args[0], [0])
        g1 = b.gep(fn.args[0], [1])
        big = LocationSize.precise_(16)
        assert self.aa.alias(loc(g0, big), loc(g1), fn) \
            is AliasResult.PARTIAL

    def test_same_base_variable_index_cancels(self, fnb):
        fn, b = fnb
        i = fn.args[2]
        g0 = b.gep(fn.args[0], [i])
        g1 = b.gep(b.gep(fn.args[0], [i]), [1])
        assert self.aa.alias(loc(g0), loc(g1), fn) is AliasResult.NO

    def test_same_base_different_variables_may(self, module):
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), I64, I64]), "g", ["a", "i", "j"])
        b = IRBuilder(fn.add_block("entry"))
        gi = b.gep(fn.args[0], [fn.args[1]])
        gj = b.gep(fn.args[0], [fn.args[2]])
        assert self.aa.alias(loc(gi), loc(gj), fn) is AliasResult.MAY

    def test_gcd_disambiguation(self, module):
        # a[2i] (8 bytes) vs a[2j+1] (8 bytes): stride 16, offsets 0 vs 8
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), I64, I64]), "g", ["a", "i", "j"])
        b = IRBuilder(fn.add_block("entry"))
        i2 = b.mul(fn.args[1], b.i64(2))
        j2 = b.mul(fn.args[2], b.i64(2))
        even = b.gep(fn.args[0], [i2])
        odd = b.gep(b.gep(fn.args[0], [j2]), [1])
        # NOTE: the scales seen are 8 for both var parts; gcd = 8 and the
        # delta is 8, so rem == 0: conservative MAY is also acceptable.
        r = self.aa.alias(loc(even), loc(odd), fn)
        assert r in (AliasResult.NO, AliasResult.MAY)

    def test_malloc_results_distinct(self, fnb):
        fn, b = fnb
        m1 = b.call("malloc", [b.i64(64)], type=ptr(F64))
        m2 = b.call("malloc", [b.i64(64)], type=ptr(F64))
        assert self.aa.alias(loc(m1), loc(m2), fn) is AliasResult.NO

    def test_malloc_vs_arg_noalias_when_uncaptured(self, fnb):
        fn, b = fnb
        m1 = b.call("malloc", [b.i64(64)], type=ptr(F64))
        assert self.aa.alias(loc(m1), loc(fn.args[0]), fn) is AliasResult.NO

    def test_null_never_aliases(self, fnb):
        from repro.ir import ConstantNull
        fn, b = fnb
        n = ConstantNull(ptr(F64))
        assert self.aa.alias(loc(n), loc(fn.args[0]), fn) is AliasResult.NO


class TestTBAA:
    def test_disjoint_scalar_tags(self, module, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        td = module.tbaa.scalar("double")
        ti = module.tbaa.scalar("long")
        a = loc(fn.args[0], tbaa=td)
        b_ = loc(fn.args[1], tbaa=ti)
        assert aa.alias(a, b_, fn) is AliasResult.NO

    def test_same_tag_may(self, module, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        td = module.tbaa.scalar("double")
        assert aa.alias(loc(fn.args[0], tbaa=td),
                        loc(fn.args[1], tbaa=td), fn) is AliasResult.MAY

    def test_char_aliases_everything(self, module, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        tc = module.tbaa.char
        td = module.tbaa.scalar("double")
        assert aa.alias(loc(fn.args[0], tbaa=tc),
                        loc(fn.args[1], tbaa=td), fn) is AliasResult.MAY

    def test_struct_field_vs_parent_scalar(self, module, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        td = module.tbaa.scalar("double")
        tf = module.tbaa.struct_field("SNA", "accum", td)
        assert aa.alias(loc(fn.args[0], tbaa=tf),
                        loc(fn.args[1], tbaa=td), fn) is AliasResult.MAY

    def test_sibling_fields_noalias(self, module, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        td = module.tbaa.scalar("double")
        f1 = module.tbaa.struct_field("S", "a", td)
        f2 = module.tbaa.struct_field("S", "b", td)
        assert aa.alias(loc(fn.args[0], tbaa=f1),
                        loc(fn.args[1], tbaa=f2), fn) is AliasResult.NO

    def test_missing_tag_may(self, fnb):
        fn, _ = fnb
        aa = TypeBasedAA()
        assert aa.alias(loc(fn.args[0]), loc(fn.args[1]), fn) \
            is AliasResult.MAY


class TestScopedNoAlias:
    def test_disjoint_scopes(self, fnb):
        fn, _ = fnb
        aa = ScopedNoAliasAA()
        sa = AliasScope("a", "f")
        sb = AliasScope("b", "f")
        la = loc(fn.args[0], scoped=ScopedAliasMD((sa,), (sb,)))
        lb = loc(fn.args[1], scoped=ScopedAliasMD((sb,), (sa,)))
        assert aa.alias(la, lb, fn) is AliasResult.NO

    def test_same_scope_may(self, fnb):
        fn, _ = fnb
        aa = ScopedNoAliasAA()
        sa = AliasScope("a", "f")
        la = loc(fn.args[0], scoped=ScopedAliasMD((sa,), ()))
        lb = loc(fn.args[1], scoped=ScopedAliasMD((sa,), ()))
        assert aa.alias(la, lb, fn) is AliasResult.MAY

    def test_missing_metadata_may(self, fnb):
        fn, _ = fnb
        aa = ScopedNoAliasAA()
        assert aa.alias(loc(fn.args[0]), loc(fn.args[1]), fn) \
            is AliasResult.MAY


class TestGlobalsAA:
    def test_private_global_vs_arg(self, module):
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        g = module.add_global(F64, "g")
        b.store(b.f64(1.0), g)
        b.ret()
        aa = GlobalsAA(module)
        assert aa.alias(loc(g), loc(fn.args[0]), fn) is AliasResult.NO

    def test_address_taken_global_may(self, module):
        fn = module.add_function(
            FunctionType(VOID, [ptr(F64), ptr(ptr(F64))]), "f")
        b = IRBuilder(fn.add_block("e"))
        g = module.add_global(F64, "g")
        b.store(g, fn.args[1])          # address leaks to memory
        b.ret()
        aa = GlobalsAA(module)
        assert aa.alias(loc(g), loc(fn.args[0]), fn) is AliasResult.MAY


class TestCFL:
    @pytest.mark.parametrize("cls", [CFLSteensAA, CFLAndersAA])
    def test_distinct_allocas(self, cls, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        y = b.alloca(F64)
        b.ret()
        aa = cls()
        assert aa.alias(loc(x), loc(y), fn) is AliasResult.NO

    @pytest.mark.parametrize("cls", [CFLSteensAA, CFLAndersAA])
    def test_loaded_pointer_flows(self, cls, module):
        """p stored into a slot and reloaded must alias itself."""
        fn = module.add_function(FunctionType(VOID, [ptr(F64)]), "f")
        b = IRBuilder(fn.add_block("e"))
        slot = b.alloca(ptr(F64))
        b.store(fn.args[0], slot)
        p = b.load(slot)
        b.ret()
        aa = cls()
        assert aa.alias(loc(p), loc(fn.args[0]), fn) is not AliasResult.NO

    @pytest.mark.parametrize("cls", [CFLSteensAA, CFLAndersAA])
    def test_escaped_alloca_vs_call_result(self, cls, module):
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        b.call("opaque", [x], type=VOID)
        r = b.call("opaque2", [], type=ptr(F64))
        b.ret()
        aa = cls()
        assert aa.alias(loc(x), loc(r), fn) is not AliasResult.NO

    def test_anders_local_store_chain(self, module):
        """Alloca stored into non-escaping slot: loads from the slot may
        alias the alloca but not an unrelated alloca."""
        fn = module.add_function(FunctionType(VOID, []), "f")
        b = IRBuilder(fn.add_block("e"))
        x = b.alloca(F64)
        z = b.alloca(F64)
        slot = b.alloca(ptr(F64))
        b.store(x, slot)
        p = b.load(slot)
        b.ret()
        aa = CFLAndersAA()
        assert aa.alias(loc(p), loc(x), fn) is not AliasResult.NO
        assert aa.alias(loc(p), loc(z), fn) is AliasResult.NO


class TestChain:
    def test_first_definite_wins_and_counts(self, fnb):
        fn, b = fnb
        aa = build_aa_chain()
        aa.current_function = fn
        x = b.alloca(F64)
        y = b.alloca(F64)
        assert aa.alias(loc(x), loc(y)) is AliasResult.NO
        assert aa.no_alias_count == 1
        assert aa.no_alias_by_pass["basic-aa"] == 1

    def test_residual_goes_to_oraql(self, fnb):
        from repro.oraql import DecisionSequence, OraqlAAPass
        fn, b = fnb
        oraql = OraqlAAPass(DecisionSequence([1]))
        aa = build_aa_chain(oraql=oraql)
        aa.current_function = fn
        r = aa.alias(loc(fn.args[0]), loc(fn.args[1]))
        assert r is AliasResult.NO
        assert oraql.opt_unique == 1

    def test_mod_ref_for_store(self, fnb):
        fn, b = fnb
        aa = build_aa_chain()
        aa.current_function = fn
        x = b.alloca(F64)
        st = b.store(b.f64(0.0), x)
        other = loc(fn.args[0])
        assert aa.get_mod_ref(st, other) is ModRefInfo.NO
        assert aa.get_mod_ref(st, loc(x)) is ModRefInfo.MOD

    def test_mod_ref_calls(self, fnb):
        fn, b = fnb
        aa = build_aa_chain()
        aa.current_function = fn
        pure = b.call("sqrt", [b.f64(2.0)], type=F64)
        opaque = b.call("frob", [], type=VOID)
        l = loc(fn.args[0])
        assert aa.get_mod_ref(pure, l) is ModRefInfo.NO
        assert aa.get_mod_ref(opaque, l) is ModRefInfo.MODREF
