"""Tests for the fault-isolated test executor: the triage matrix
(trapped / step-limit / deadlock / wrong-output through check, triage,
and explain), per-test fuel and wall-clock budgets, transient-fault
retries, and the nondeterminism probe."""

import pytest

from repro.oraql import (
    BenchmarkConfig,
    Compiler,
    ExecutorPolicy,
    ProbingDriver,
    ProbingError,
    SourceFile,
    TestExecutor,
    VerificationScript,
    triage_run,
)
from repro.oraql.verify import RunResult

SAFE_SRC = """
int main() {
  double x[8];
  for (int i = 0; i < 8; i++) { x[i] = i * 2.0; }
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s = s + x[i]; }
  printf("sum = %.1f\\n", s);
  return 0;
}
"""

TRAP_SRC = """
int main() {
  double x[4];
  double* p = x;
  for (int i = 0; i < 4; i++) { x[i] = 1.0; }
  double v = p[4000000];
  printf("%f\\n", v);
  return 0;
}
"""

BUSY_SRC = """
int main() {
  double s = 0.0;
  for (int i = 0; i < 100000; i++) { s = s + 1.0; }
  printf("%.1f\\n", s);
  return 0;
}
"""


def cfg_of(src, name="t"):
    return BenchmarkConfig(name=name, sources=[SourceFile("t.c", src)])


def compile_plain(src):
    return Compiler().compile(cfg_of(src), sequence=None,
                              oraql_enabled=False)


class TestTriageMatrix:
    def test_ok(self):
        prog = compile_plain(SAFE_SRC)
        r = prog.run()
        assert r.ok and r.error_kind is None
        assert triage_run(r) == "ok"
        v = VerificationScript([r.stdout])
        assert v.check(r)
        assert v.triage(r) == "ok"

    def test_wrong_output(self):
        prog = compile_plain(SAFE_SRC)
        r = prog.run()
        v = VerificationScript(["something else entirely\n"])
        assert not v.check(r)
        assert v.triage(r) == "wrong-output"
        assert "expected" in v.explain(r) or "mismatch" in v.explain(r)

    def test_trapped(self):
        prog = compile_plain(TRAP_SRC)
        r = prog.run()
        assert not r.ok
        assert r.error_kind == "MemoryTrap"
        assert triage_run(r) == "trapped"
        v = VerificationScript(["unused\n"])
        assert v.triage(r) == "trapped"
        assert "[trapped]" in v.explain(r)

    def test_step_limit_via_fuel(self):
        prog = compile_plain(BUSY_SRC)
        r = prog.run(fuel=64)
        assert not r.ok
        assert r.error_kind == "StepLimitExceeded"
        assert triage_run(r) == "step-limit"
        assert "[step-limit]" in VerificationScript(["x\n"]).explain(r)

    def test_wall_clock_budget(self):
        prog = compile_plain(BUSY_SRC)
        r = prog.run(wall_clock=1e-9)
        assert not r.ok
        assert r.error_kind == "WallClockExceeded"
        assert triage_run(r) == "step-limit"

    def test_deadlock_classified(self):
        r = RunResult("", "trapped", "all workers blocked",
                      error_kind="DeadlockError")
        assert triage_run(r) == "deadlock"
        assert "[deadlock]" in VerificationScript(["x\n"]).explain(r)

    def test_unknown_error_kind_is_trapped(self):
        r = RunResult("", "trapped", "???", error_kind="SomethingNew")
        assert triage_run(r) == "trapped"


class TestPolicyValidation:
    def test_bad_nondet_mode(self):
        with pytest.raises(ValueError, match="nondet_probe"):
            ExecutorPolicy(nondet_probe="sometimes")

    def test_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            ExecutorPolicy(retries=-1)


class FlakyCompiler(Compiler):
    """Raises on the first ``failures`` compile calls, then delegates."""

    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.calls = 0

    def compile(self, *a, **k):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient fault #{self.calls}")
        return super().compile(*a, **k)


class TestCompileRetry:
    def test_transient_fault_retried(self):
        comp = FlakyCompiler(failures=2)
        ex = TestExecutor(comp, ExecutorPolicy(retries=2, backoff=0.0))
        prog = ex.compile(cfg_of(SAFE_SRC), None, oraql_enabled=False)
        assert prog.exe_hash
        assert ex.retries_used == 2
        assert comp.calls == 3

    def test_budget_exhausted_is_probing_error(self):
        comp = FlakyCompiler(failures=10)
        ex = TestExecutor(comp, ExecutorPolicy(retries=1, backoff=0.0))
        with pytest.raises(ProbingError) as ei:
            ex.compile(cfg_of(SAFE_SRC), None, oraql_enabled=False)
        assert ei.value.triage == "compiler-error"
        assert "transient fault" in str(ei.value)

    def test_zero_retries(self):
        comp = FlakyCompiler(failures=1)
        ex = TestExecutor(comp, ExecutorPolicy(retries=0, backoff=0.0))
        with pytest.raises(ProbingError):
            ex.compile(cfg_of(SAFE_SRC), None, oraql_enabled=False)
        assert ex.retries_used == 0


class BrokenCompiler(Compiler):
    """Raises the given exception on every compile call."""

    def __init__(self, exc):
        super().__init__()
        self.exc = exc
        self.calls = 0

    def compile(self, *a, **k):
        self.calls += 1
        raise self.exc


class TestDeterministicCompilerErrors:
    """A deterministic compiler failure fails identically on every
    attempt — retrying it only burns wall-clock and retry budget, so it
    must surface as ``compiler-error`` immediately."""

    @pytest.mark.parametrize("exc", [
        ValueError("bad flag"),
        TypeError("wrong argument"),
        KeyError("missing table entry"),
        type("VerifierError", (RuntimeError,), {})("IR verify failed"),
    ])
    def test_raised_immediately_without_retries(self, exc):
        comp = BrokenCompiler(exc)
        ex = TestExecutor(comp, ExecutorPolicy(retries=5, backoff=0.0))
        with pytest.raises(ProbingError) as ei:
            ex.compile(cfg_of(SAFE_SRC), None, oraql_enabled=False)
        assert ei.value.triage == "compiler-error"
        assert "after 1 attempt" in str(ei.value)
        assert comp.calls == 1, "deterministic failures must not retry"
        assert ex.retries_used == 0

    def test_frontend_error_not_retried(self):
        # a real deterministic failure end-to-end: unparsable source
        comp = FlakyCompiler(failures=0)  # counts calls, never injects
        ex = TestExecutor(comp, ExecutorPolicy(retries=3, backoff=0.0))
        with pytest.raises(ProbingError) as ei:
            ex.compile(cfg_of("int main( { return 0; }"), None,
                       oraql_enabled=False)
        assert ei.value.triage == "compiler-error"
        assert comp.calls == 1
        assert ex.retries_used == 0

    def test_classifier(self):
        from repro.faults.injector import InjectedCompilerError
        from repro.oraql.executor import is_transient_compiler_fault
        assert is_transient_compiler_fault(RuntimeError("io hiccup"))
        assert is_transient_compiler_fault(InjectedCompilerError("x"))
        assert is_transient_compiler_fault(OSError("disk full"))
        assert is_transient_compiler_fault(MemoryError())
        assert not is_transient_compiler_fault(ValueError("x"))
        # deterministic RuntimeError *subclasses* are not transient
        class DetError(RuntimeError):
            pass
        assert not is_transient_compiler_fault(DetError("x"))
        # session control flow is neither; it unwinds untouched
        from repro.faults.injector import SessionKilled
        assert not is_transient_compiler_fault(SessionKilled("x"))
        assert not is_transient_compiler_fault(ProbingError("x"))


class FakeProgram:
    """Duck-typed CompiledProgram emitting a scripted run sequence."""

    exe_hash = "fake-hash"
    oraql = None

    def __init__(self, results):
        self.results = list(results)

    def run(self, fuel=None, wall_clock=None):
        return self.results.pop(0)


GOOD = RunResult("42\n", "done")
BAD = RunResult("41\n", "done")


class TestNondeterminismProbe:
    def verifier(self):
        return VerificationScript(["42\n"])

    def test_deterministic_failure_not_flaky(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0))
        out = ex.run_and_verify(FakeProgram([BAD, BAD]), self.verifier())
        assert not out.ok and not out.flaky
        assert out.attempts == 2
        assert ex.nondet_reruns == 1

    def test_flip_detected_as_flaky(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0))
        out = ex.run_and_verify(FakeProgram([BAD, GOOD]), self.verifier())
        assert out.flaky
        assert out.triage == "wrong-output"

    def test_probe_first_only_probes_once(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0,
                                                nondet_probe="first"))
        ex.run_and_verify(FakeProgram([BAD, BAD]), self.verifier())
        out = ex.run_and_verify(FakeProgram([BAD]), self.verifier())
        assert out.attempts == 1
        assert ex.nondet_reruns == 1

    def test_probe_always(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0,
                                                nondet_probe="always"))
        ex.run_and_verify(FakeProgram([BAD, BAD]), self.verifier())
        ex.run_and_verify(FakeProgram([BAD, BAD]), self.verifier())
        assert ex.nondet_reruns == 2

    def test_probe_never(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0,
                                                nondet_probe="never"))
        out = ex.run_and_verify(FakeProgram([BAD]), self.verifier())
        assert out.attempts == 1
        assert ex.nondet_reruns == 0

    def test_passing_run_not_probed(self):
        ex = TestExecutor(policy=ExecutorPolicy(backoff=0.0))
        out = ex.run_and_verify(FakeProgram([GOOD]), self.verifier())
        assert out.ok and out.attempts == 1


class TestDriverPolicyPlumbing:
    def test_driver_threads_fuel_to_tests(self):
        # a fuel so small that even the baseline run cannot finish: the
        # baseline check must fail with a step-limit triage, surfaced as
        # a structured ProbingError
        with pytest.raises(ProbingError) as ei:
            ProbingDriver(cfg_of(BUSY_SRC),
                          policy=ExecutorPolicy(fuel=64,
                                                backoff=0.0)).run()
        assert ei.value.triage == "step-limit"
        assert "baseline" in str(ei.value)
