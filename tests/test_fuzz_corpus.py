"""Replay the checked-in fuzz corpus (``fuzz/corpus/``) on every tier-1
run, so a fixed bug stays fixed and a caught hazard stays caught.

Each corpus entry is a minimized reproducer written by the campaign's
delta-debugging reducer (see ``repro.fuzz.corpus`` for the format).
Regression semantics depend on the entry kind:

* ``optimism-hazard`` — the divergence is *by design* (a genuinely
  dangerous no-alias answer).  Regression: the pessimistic build still
  matches O0, the all-optimistic build still diverges, and the probing
  driver's bisection still pins it to a non-empty pessimistic set.
* anything else (``miscompile``, ``invalidation-hash``,
  ``reference-failure``) — a genuine bug checked in together with its
  fix.  Regression: the whole config matrix agrees with O0 again.
"""

import pytest

from repro.fuzz.corpus import find_repo_corpus, load_corpus
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.render import ast_size
from repro.frontend import parse

_corpus_dir = find_repo_corpus()
ENTRIES = load_corpus(_corpus_dir) if _corpus_dir else []


def _ids():
    return [e.name for e in ENTRIES]


@pytest.mark.skipif(not ENTRIES, reason="no checked-in fuzz corpus")
def test_corpus_directory_is_complete():
    for e in ENTRIES:
        assert e.source, e.name
        assert e.kind, e.name


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_corpus_entry_replays(entry):
    oracle = DifferentialOracle()
    res = oracle.check(entry.seed, entry.source)
    if entry.kind == "optimism-hazard":
        # the hazard must still be dangerous — and still be caught
        assert res.optimism_divergent, \
            f"{entry.name}: hazard no longer diverges optimistically"
        assert res.pessimistic_indices, \
            f"{entry.name}: bisection no longer explains the divergence"
        assert res.outcomes["pessimistic"] == "match", \
            f"{entry.name}: pessimistic build no longer matches O0"
        assert res.clean, f"{entry.name}: {res.findings}"
    else:
        # a fixed bug: every config must agree with the O0 reference
        assert res.clean, f"{entry.name}: {res.findings}"
        assert not res.optimism_divergent or res.pessimistic_indices


@pytest.mark.parametrize("entry", ENTRIES, ids=_ids())
def test_corpus_entry_is_minimal_and_parseable(entry):
    unit = parse(entry.source, filename=entry.name + ".c")
    assert ast_size(unit) == entry.reduced_size
    assert entry.reduced_size <= entry.original_size
