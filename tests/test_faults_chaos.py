"""Tests for the deterministic fault injector and the chaos campaign
(``python -m repro.fuzz --chaos``)."""

import pytest

from repro.faults.chaos import (
    DEFAULT_CHAOS_KINDS,
    ChaosOptions,
    run_chaos,
    run_injection,
)
from repro.faults.injector import (
    FAULT_KINDS,
    SITE_OF,
    FaultInjector,
    FaultSpec,
)
from repro.fuzz.cli import main as fuzz_main


class TestInjectorMechanics:
    def test_poll_advances_counters(self):
        inj = FaultInjector()
        for _ in range(3):
            assert inj.poll("test") is None
        assert inj.counters == {"compile": 0, "run": 0, "test": 3}

    def test_spec_fires_exactly_once(self):
        spec = FaultSpec("trap", at=1)
        inj = FaultInjector([spec])
        assert inj.poll("run") is None          # index 0
        assert inj.poll("run") is spec          # index 1: fires
        assert spec.fired
        assert inj.poll("run") is None          # never again
        assert inj.fired == [spec]

    def test_site_discrimination(self):
        inj = FaultInjector([FaultSpec("trap", at=0)])
        assert inj.poll("compile") is None      # trap is a run fault
        assert inj.poll("test") is None
        assert inj.poll("run") is not None

    def test_attempt_discrimination(self):
        # a requeued worker (attempt 1) must not re-hit attempt-0 faults
        plan = [FaultSpec("worker-kill", at=0).to_dict()]
        retry = FaultInjector.from_json_plan(plan, attempt=1)
        assert retry.poll("test") is None

    def test_plan_round_trip(self):
        inj = FaultInjector([FaultSpec("hang", at=2, attempt=1)])
        plan = inj.to_json_plan()
        back = FaultInjector.from_json_plan(plan, attempt=1)
        assert len(back.plan) == 1
        assert back.plan[0].kind == "hang"
        assert back.plan[0].at == 2
        assert not back.plan[0].fired

    def test_from_json_plan_of_none(self):
        assert FaultInjector.from_json_plan(None) is None

    def test_plan_from_seed_deterministic(self):
        spans = {"compile": 8, "run": 4, "test": 6}
        a = FaultInjector.plan_from_seed(7, FAULT_KINDS, spans)
        b = FaultInjector.plan_from_seed(7, FAULT_KINDS, spans)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
        c = FaultInjector.plan_from_seed(8, FAULT_KINDS, spans)
        assert [s.to_dict() for s in a] != [s.to_dict() for s in c]

    def test_every_kind_has_a_site(self):
        assert set(SITE_OF) == set(FAULT_KINDS)
        assert set(DEFAULT_CHAOS_KINDS) <= set(FAULT_KINDS)


class TestChaosCampaign:
    def test_single_injection_deterministic(self):
        opts = ChaosOptions(injections=1, seed_start=0)
        a = run_injection(0, opts)
        b = run_injection(0, opts)
        assert a.ok
        assert (a.kind, a.at, a.workload, a.strategy, a.outcome) \
            == (b.kind, b.at, b.workload, b.strategy, b.outcome)

    def test_session_kill_is_resumed(self):
        # session-kill is kind index 5 in DEFAULT_CHAOS_KINDS, so seed
        # base + 5 schedules one; the experiment must recover via the
        # journal, not by starting over more than once
        idx = DEFAULT_CHAOS_KINDS.index("session-kill")
        opts = ChaosOptions(injections=idx + 1, seed_start=0)
        r = run_injection(idx, opts)
        assert r.kind == "session-kill"
        assert r.outcome == "recovered"
        assert r.resumes == 1

    def test_small_campaign_covers_all_kinds(self):
        opts = ChaosOptions(injections=len(DEFAULT_CHAOS_KINDS),
                            seed_start=100)
        report = run_chaos(opts)
        assert report.ok, report.render()
        assert {r.kind for r in report.results} \
            == set(DEFAULT_CHAOS_KINDS)
        assert "chaos campaign" in report.render()
        assert "unrecovered        : 0" in report.render()

    def test_kind_filter(self):
        opts = ChaosOptions(injections=3, kinds=("compiler-error",))
        report = run_chaos(opts)
        assert report.ok
        assert all(r.kind == "compiler-error" for r in report.results)

    def test_time_budget_partial(self):
        opts = ChaosOptions(injections=500, time_budget=1e-9)
        report = run_chaos(opts)
        assert report.budget_exhausted
        assert len(report.results) < 500


class TestChaosCLI:
    def test_chaos_smoke(self, capsys):
        rc = fuzz_main(["--chaos", "--chaos-injections", "4", "-q"])
        assert rc == 0
        assert "chaos campaign" in capsys.readouterr().out

    def test_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--chaos", "--chaos-kinds", "meteor-strike"])

    def test_rejects_nonpositive_injections(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--chaos", "--chaos-injections", "0"])
