"""Unit tests for the query-provenance trace layer: the sink, the phase
timer, event records, exporters, the summarize views, and the
``python -m repro.trace`` CLI."""

import json
import os

import pytest

from repro.oraql.driver import ProbingDriver
from repro.trace import (
    QueryTrace,
    PhaseNode,
    PhaseTimer,
    RESPONDER_ORAQL,
    render_tree,
)
from repro.trace import events as ev
from repro.trace import export, summarize
from repro.trace.__main__ import main as trace_main

from test_oraql_driver import HAZARD_SRC, SAFE_SRC, cfg_of


class FakeClock:
    """Deterministic clock: every read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestPhaseTimer:
    def test_nesting_and_self_time(self):
        t = PhaseTimer(clock=FakeClock())
        with t.phase("outer"):
            with t.phase("inner"):
                pass
        outer = t.root.children["outer"]
        inner = outer.children["inner"]
        assert outer.count == 1 and inner.count == 1
        assert inner.total <= outer.total
        assert outer.self_time >= 0
        assert outer.self_time == pytest.approx(outer.total - inner.total)

    def test_reentry_accumulates(self):
        t = PhaseTimer(clock=FakeClock())
        for _ in range(3):
            with t.phase("p"):
                pass
        assert t.root.children["p"].count == 3

    def test_merge_and_dict_roundtrip(self):
        a = PhaseTimer(clock=FakeClock())
        with a.phase("x"):
            with a.phase("y"):
                pass
        b = PhaseTimer(clock=FakeClock())
        with b.phase("x"):
            pass
        with b.phase("z"):
            pass
        a.merge(b)
        assert a.root.children["x"].count == 2
        assert "z" in a.root.children
        tree = a.to_dict()
        back = PhaseTimer.from_dict(tree)
        assert back.to_dict() == tree

    def test_merge_dict_none_is_noop(self):
        t = PhaseTimer()
        t.merge_dict(None)
        assert t.root.children == {}

    def test_render_normalized_hides_times(self):
        t = PhaseTimer(clock=FakeClock())
        with t.phase("p"):
            pass
        text = t.render(normalize=True)
        assert "*" in text and "0.0" not in text
        assert "Phase timing report" in text

    def test_exception_still_closes_phase(self):
        t = PhaseTimer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with t.phase("p"):
                raise RuntimeError("boom")
        assert t.root.children["p"].count == 1
        assert t._stack == [t.root]


class TestEvents:
    def test_split_compiles(self):
        records = [
            ev.meta_record("c", "chunked"),
            ev.compile_record(1, "baseline"),
            {"t": "q"},
            ev.compile_record(2, "final"),
            {"t": "r"},
            {"t": "done"},
        ]
        buckets = ev.split_compiles(records)
        assert [label for label, _ in buckets] == \
            ["<pre>", "baseline", "final"]
        assert len(buckets[2][1]) == 2

    def test_split_compiles_empty_pre_dropped(self):
        records = [ev.compile_record(1, "final"), {"t": "q"}]
        assert [l for l, _ in ev.split_compiles(records)] == ["final"]

    def test_compile_record_bits(self):
        rec = ev.compile_record(3, "probe", bits=[1, 0, 1])
        assert rec["bits"] == "101"
        assert "bits" not in ev.compile_record(1, "baseline")

    def test_query_record_oraql_fields(self):
        rec = ev.query_record("GVN", ["GVN"], "f", "ab12", RESPONDER_ORAQL,
                              "NoAlias", cached=True, index=4,
                              optimistic=True)
        assert rec["cached"] and rec["index"] == 4
        plain = ev.query_record("GVN", ["GVN"], "f", "ab12", "tbaa",
                                "NoAlias")
        assert "cached" not in plain and "index" not in plain


class TestSink:
    def test_remark_links_optimistic_answers_since_mark(self):
        sink = QueryTrace(clock=FakeClock())
        sink.begin_compile("final")
        # out-of-window answer (before the mark) must not be linked
        sink._oraql_log.append((9, True))
        mark = sink.mark()
        sink._oraql_log.append((2, True))
        sink._oraql_log.append((3, False))   # pessimistic: not linked
        sink._oraql_log.append((2, True))    # duplicate: linked once
        sink.remark("LICM", "f", "hoisted load %x", since=mark)
        rec = [r for r in sink.records if r["t"] == "r"][0]
        assert rec["queries"] == [2]
        assert rec["message"].endswith("because ORAQL said no-alias(q2)")

    def test_remark_without_optimistic_answers_is_plain(self):
        sink = QueryTrace(clock=FakeClock())
        sink.begin_compile("final")
        mark = sink.mark()
        sink.remark("DSE", "f", "deleted dead store", since=mark)
        rec = [r for r in sink.records if r["t"] == "r"][0]
        assert rec["queries"] == []
        assert "because" not in rec["message"]

    def test_timer_only_mode_records_nothing(self):
        sink = QueryTrace(clock=FakeClock(), record_events=False)
        sink.session("c", "chunked")
        sink.begin_compile("final")
        sink.remark("p", "f", "m", since=sink.mark())
        sink.record_done([1])
        assert sink.records == []
        with sink.phase("passes"):
            pass
        assert "passes" in sink.timer.root.children

    def test_begin_compile_resets_remark_window(self):
        sink = QueryTrace(clock=FakeClock())
        sink.begin_compile("probe")
        sink._oraql_log.append((0, True))
        sink.begin_compile("final")
        assert sink.mark() == 0


class TestExport:
    def test_jsonl_atomic_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        export.write_jsonl(str(path), [{"t": "meta"}, {"t": "done"}])
        assert export.read_jsonl(str(path)) == [{"t": "meta"}, {"t": "done"}]
        # no temp litter
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]

    def test_chrome_validate_catches_garbage(self):
        assert export.validate_chrome({"nope": 1})
        assert export.validate_chrome(
            {"traceEvents": [{"ph": "Q"}], "displayTimeUnit": "ms"})
        good = export.chrome_document([{"t": "meta"}])
        assert export.validate_chrome(good) == []

    def test_chrome_validate_structural_fallback(self, monkeypatch):
        import builtins
        real_import = builtins.__import__

        def no_jsonschema(name, *args, **kwargs):
            if name == "jsonschema":
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_jsonschema)
        good = export.chrome_document([{"t": "meta"}])
        assert export.validate_chrome(good) == []
        assert export.validate_chrome({"nope": 1})

    def test_chrome_phase_events_from_timer(self):
        t = PhaseTimer(clock=FakeClock())
        with t.phase("passes"):
            with t.phase("GVN"):
                pass
        doc = export.chrome_document([], t.to_dict())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"passes", "GVN"} <= names
        gvn = next(e for e in complete if e["name"] == "GVN")
        passes = next(e for e in complete if e["name"] == "passes")
        # the child's span nests inside the parent's
        assert gvn["ts"] >= passes["ts"]
        assert gvn["ts"] + gvn["dur"] <= passes["ts"] + passes["dur"] + 1e-6


class TestSummarize:
    def _trace(self):
        trace = QueryTrace()
        ProbingDriver(cfg_of(HAZARD_SRC, "hazard"), trace=trace).run()
        return trace

    def test_query_counts_match_live_report(self):
        trace = QueryTrace()
        rep = ProbingDriver(cfg_of(HAZARD_SRC, "hazard"), trace=trace).run()
        c = summarize.query_counts(trace.records, "final")
        assert c["opt_unique"] == rep.opt_unique
        assert c["opt_cached"] == rep.opt_cached
        assert c["pess_unique"] == rep.pess_unique
        assert c["pess_cached"] == rep.pess_cached
        assert c["no_alias_total"] == rep.no_alias_oraql

    def test_pass_stats_match_live_stats(self):
        trace = QueryTrace()
        rep = ProbingDriver(cfg_of(SAFE_SRC, "safe"), trace=trace).run()
        rows = summarize.pass_stats(trace.records, "final")
        assert sorted(rows) == rep.final_program.stats.rows()

    def test_unknown_label_raises_with_choices(self):
        trace = self._trace()
        with pytest.raises(ValueError, match="final"):
            summarize.render_query_table(trace.records, "nonsense")

    def test_explain_query_lists_enabling_remarks(self):
        trace = self._trace()
        pess = summarize.pessimistic_set(trace.records)
        assert pess  # the hazard workload pins at least one query
        text = summarize.explain_query(trace.records, pess[0], "final")
        assert f"query q{pess[0]}" in text
        assert "asked by" in text

    def test_summarize_renders_all_sections(self):
        trace = self._trace()
        text = summarize.summarize(trace.records, trace.timer.to_dict())
        for needle in ("Fig. 4 columns", "query attribution",
                       "Fig. 6 style", "Remarks:", "Pessimistic set",
                       "Phase timing report"):
            assert needle in text


class TestTraceCLI:
    def _write_trace(self, tmp_path):
        trace = QueryTrace()
        ProbingDriver(cfg_of(HAZARD_SRC, "hazard"), trace=trace).run()
        path = tmp_path / "t.jsonl"
        export.write_jsonl(str(path), trace.records)
        timer = tmp_path / "timer.json"
        timer.write_text(json.dumps(trace.timer.to_dict()))
        return str(path), str(timer)

    def test_summarize_subcommand(self, tmp_path, capsys):
        path, timer = self._write_trace(tmp_path)
        assert trace_main(["summarize", path, "--timer", timer]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4 columns" in out and "Phase timing report" in out

    def test_chrome_and_validate_subcommands(self, tmp_path, capsys):
        path, timer = self._write_trace(tmp_path)
        out_json = str(tmp_path / "t.json")
        assert trace_main(["chrome", path, "-o", out_json,
                           "--timer", timer]) == 0
        assert trace_main(["validate", out_json]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}')
        assert trace_main(["validate", str(bad)]) == 1

    def test_query_explain_subcommand(self, tmp_path, capsys):
        path, _ = self._write_trace(tmp_path)
        assert trace_main(["summarize", path, "--query", "0"]) == 0
        assert "query q0" in capsys.readouterr().out
