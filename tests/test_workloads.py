"""Workload tests: every Fig. 4 configuration compiles, runs
deterministically, and matches the paper's qualitative behaviour under
ORAQL.  The full-probe shape checks are the slowest tests in the suite
(each runs the probing driver end to end)."""

import pytest

import repro.workloads  # noqa: F401 — registers all variants
from repro.oraql import Compiler, DecisionSequence, ProbingDriver
from repro.workloads.base import all_variants, get_config, get_info, row_names

ALL_ROWS = row_names()

#: paper expectation: which configurations are fully optimistic (Fig. 4)
FULLY_OPTIMISTIC = {
    "TestSNAP-seq", "TestSNAP-kokkos-cuda", "GridMini-offload",
    "Quicksilver-openmp", "MiniGMG-ompif", "MiniGMG-omptask", "MiniGMG-sse",
}
NEEDS_PESSIMISTIC = set(ALL_ROWS) - FULLY_OPTIMISTIC


def test_sixteen_configurations_registered():
    assert len(ALL_ROWS) == 16
    benchmarks = {get_info(r).benchmark for r in ALL_ROWS}
    assert benchmarks == {"TestSNAP", "XSBench", "GridMini", "Quicksilver",
                          "LULESH", "MiniFE", "MiniGMG"}


@pytest.mark.parametrize("row", ALL_ROWS)
def test_baseline_compiles_and_runs(row):
    cfg = get_config(row)
    prog = Compiler().compile(cfg, oraql_enabled=False)
    r = prog.run()
    assert r.ok, f"{row}: {r.state} {r.error}"
    assert r.stdout.strip(), "benchmarks must print verification output"


@pytest.mark.parametrize("row", ALL_ROWS)
def test_baseline_deterministic(row):
    cfg = get_config(row)
    out = [Compiler().compile(cfg, oraql_enabled=False).run().stdout
           for _ in range(2)]
    assert out[0] == out[1]


@pytest.mark.parametrize("row", ALL_ROWS)
def test_compilation_deterministic(row):
    """Same config + same sequence => bit-identical executable (the
    property the driver's hash cache depends on)."""
    cfg = get_config(row)
    h = [Compiler().compile(cfg, oraql_enabled=True,
                            sequence=DecisionSequence([1, 0, 1])).exe_hash
         for _ in range(2)]
    assert h[0] == h[1]


@pytest.mark.parametrize("row", sorted(FULLY_OPTIMISTIC))
def test_fully_optimistic_configs(row):
    rep = ProbingDriver(get_config(row)).run()
    assert rep.fully_optimistic, rep.summary()
    assert rep.pess_unique == 0
    assert rep.no_alias_oraql > rep.no_alias_original


@pytest.mark.parametrize("row", sorted(NEEDS_PESSIMISTIC))
def test_pessimistic_configs(row):
    rep = ProbingDriver(get_config(row)).run()
    assert not rep.fully_optimistic, rep.summary()
    assert rep.pess_unique >= 1
    assert rep.opt_unique > rep.pess_unique  # most queries stay optimistic


def test_xsbench_pessimistic_queries_identical_across_variants():
    """Paper §V-B: the pessimistic queries are the same in all three
    XSBench variants — they all involve pick_mat's dist[12]."""
    per_variant = {}
    for row in ("XSBench-seq", "XSBench-openmp", "XSBench-cuda-thrust"):
        rep = ProbingDriver(get_config(row)).run()
        sigs = sorted((r.scope, r.issuing_pass)
                      for r in rep.pessimistic_records)
        per_variant[row] = (rep.pess_unique, sigs)
    vals = list(per_variant.values())
    assert vals[0] == vals[1] == vals[2]
    scopes = {s for _, sigs in vals for s, _ in sigs}
    assert scopes <= {"dist_smooth", "dist_blend", "dist_total",
                      "dist_scale", "dist_clamp", "pick_mat"}


def test_testsnap_openmp_dump_matches_fig3_shape():
    rep = ProbingDriver(get_config("TestSNAP-openmp")).run()
    recs = rep.pessimistic_records
    assert recs
    # all pessimistic queries sit in the outlined parallel region
    assert all("omp_outlined" in r.scope for r in recs)


def test_gridmini_probing_restricted_to_device():
    rep = ProbingDriver(get_config("GridMini-offload")).run()
    final = rep.final_program
    # every ORAQL query came from an nvptx function
    for rec in final.oraql.records:
        pass  # scopes recorded below
    scopes = {r.scope for r in final.oraql.records}
    module = final.module
    for scope in scopes:
        assert module.functions[scope].target == "nvptx"


def test_lulesh_probe_scope_limited_to_timed_functions():
    rep = ProbingDriver(get_config("LULESH-seq")).run()
    scopes = {r.scope.split(".omp_outlined")[0]
              for r in rep.final_program.oraql.records}
    allowed = {"CalcForceForNodes", "CalcVelocityForNodes",
               "CalcPositionForNodes", "CalcEnergyForElems",
               "LagrangeLeapFrog"}
    assert scopes <= allowed


def test_lulesh_mpi_runs_four_ranks():
    cfg = get_config("LULESH-mpi")
    assert cfg.nranks == 4
    r = Compiler().compile(cfg, oraql_enabled=False).run()
    assert r.ok
    assert "MPI, 4 ranks" in r.stdout


def test_testsnap_kokkos_kernels_present():
    cfg = get_config("TestSNAP-kokkos-cuda")
    prog = Compiler().compile(cfg, oraql_enabled=False)
    assert len(prog.kernel_info) >= 6
    r = prog.run()
    assert set(r.kernel_cycles) == set(prog.kernel_info)


def test_output_filters_mask_timing():
    cfg = get_config("TestSNAP-seq")
    from repro.oraql import VerificationScript
    v = VerificationScript(["grind time <T>"], cfg.output_filters)
    assert v.check_output("grind time 0.123 msec/atom-step")
    assert v.check_output("grind time 9.999 msec/atom-step")
